//===- ConfigTest.cpp - Unified configuration surface tests -------------------===//
//
// optabs::Config is the single public configuration surface: defaults,
// environment resolution (OPTABS_*), structured validation, and the
// conversion into the deprecated TracerOptions alias. The precedence chain
// is explicit > environment > defaults; validate() must reject every
// documented invalid configuration with a stable field path so callers
// (CLI, serve tool, service sessions) can report errors uniformly.
// support::ArgParser, the shared CLI front end of both tools, is covered
// here too.
//
//===----------------------------------------------------------------------===//

#include "support/Args.h"
#include "support/Config.h"
#include "tracer/QueryDriver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace optabs;

namespace {

/// Finds the message for \p Field among \p Errors ("" when absent).
std::string messageFor(const std::vector<ConfigError> &Errors,
                       const std::string &Field) {
  for (const ConfigError &E : Errors)
    if (E.Field == Field)
      return E.Message.empty() ? "(empty message)" : E.Message;
  return "";
}

/// RAII environment override so failures cannot leak into other tests.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    const char *Old = std::getenv(Name);
    if (Old) {
      Saved = Old;
      HadOld = true;
    }
    setenv(Name, Value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (HadOld)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::string Saved;
  bool HadOld = false;
};

TEST(ConfigTest, DefaultsValidate) {
  Config C = Config::defaults();
  EXPECT_TRUE(C.validate().empty());
}

// The acceptance criterion: validate() rejects at least five documented
// invalid configurations, each with its stable field path.
TEST(ConfigTest, ValidateRejectsDocumentedInvalidConfigs) {
  {
    Config C = Config::defaults();
    C.Execution.Strategy = "simulated-annealing";
    EXPECT_NE(messageFor(C.validate(), "execution.strategy"), "");
  }
  {
    Config C = Config::defaults();
    C.Execution.TracesPerIteration = 0;
    EXPECT_NE(messageFor(C.validate(), "execution.traces_per_iteration"), "");
  }
  {
    Config C = Config::defaults();
    C.Execution.MaxItersPerQuery = 0;
    EXPECT_NE(messageFor(C.validate(), "execution.max_iters_per_query"), "");
  }
  {
    Config C = Config::defaults();
    C.Execution.ProductSoftCap = 0;
    EXPECT_NE(messageFor(C.validate(), "execution.product_soft_cap"), "");
  }
  {
    Config C = Config::defaults();
    C.Budgets.TimeBudgetSeconds = 0;
    EXPECT_NE(messageFor(C.validate(), "budgets.time_budget_seconds"), "");
  }
  {
    // A per-phase wall-clock timeout makes verdicts depend on machine
    // speed, which the deterministic contract forbids.
    Config C = Config::defaults();
    C.Execution.Deterministic = true;
    C.Budgets.BackwardTimeoutSeconds = 1.5;
    EXPECT_NE(messageFor(C.validate(), "budgets.backward_timeout_seconds"),
              "");
  }
  {
    // greedy-grow never degrades, so a memory budget would be a silent no-op.
    Config C = Config::defaults();
    C.Execution.Strategy = "greedy-grow";
    C.Budgets.MemoryBudgetBytes = 1 << 20;
    EXPECT_NE(messageFor(C.validate(), "budgets.memory_budget_bytes"), "");
  }
  {
    Config C = Config::defaults();
    C.Observability.EventTraceLabel = "label-without-a-path";
    EXPECT_NE(messageFor(C.validate(), "observability.event_trace_label"),
              "");
  }
  {
    Config C = Config::defaults();
    C.Service.MaxPendingPerSession = 0;
    EXPECT_NE(messageFor(C.validate(), "service.max_pending_per_session"),
              "");
  }
  {
    Config C = Config::defaults();
    C.Service.MaxSessions = 0;
    EXPECT_NE(messageFor(C.validate(), "service.max_sessions"), "");
  }
  {
    // A spill budget with no cache directory has nowhere to spill.
    Config C = Config::defaults();
    C.Service.SpillBytes = 1 << 20;
    EXPECT_NE(messageFor(C.validate(), "service.spill_bytes"), "");
  }
  {
    // Likewise persisting at shutdown needs somewhere to persist to.
    Config C = Config::defaults();
    C.Service.PersistOnShutdown = true;
    EXPECT_NE(messageFor(C.validate(), "service.persist_on_shutdown"), "");
  }
  {
    // Both are fine once a cache directory is configured.
    Config C = Config::defaults();
    C.Service.CacheDir = "/tmp/optabs-cache";
    C.Service.SpillBytes = 1 << 20;
    C.Service.PersistOnShutdown = true;
    EXPECT_TRUE(C.validate().empty());
  }
}

TEST(ConfigTest, FormatConfigErrorsIsLinePerError) {
  Config C = Config::defaults();
  C.Execution.TracesPerIteration = 0;
  C.Service.MaxSessions = 0;
  std::string Text = formatConfigErrors(C.validate());
  EXPECT_NE(Text.find("config error: execution.traces_per_iteration"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("config error: service.max_sessions"),
            std::string::npos)
      << Text;
}

TEST(ConfigTest, EnvironmentOverridesDefaults) {
  ScopedEnv K("OPTABS_K", "9");
  ScopedEnv Strategy("OPTABS_STRATEGY", "greedy-grow");
  ScopedEnv Threads("OPTABS_THREADS", "3");
  ScopedEnv Cache("OPTABS_CACHE_CAPACITY", "17");
  std::vector<ConfigError> Errors;
  Config C = Config::fromEnv(&Errors);
  EXPECT_TRUE(Errors.empty()) << formatConfigErrors(Errors);
  EXPECT_EQ(C.Execution.K, 9u);
  EXPECT_EQ(C.Execution.Strategy, "greedy-grow");
  EXPECT_EQ(C.Execution.NumThreads, 3u);
  EXPECT_EQ(C.Execution.ForwardCacheCapacity, 17u);

  // Explicit assignment beats the environment: the precedence chain is
  // explicit > env > defaults, and "explicit" is just writing the field.
  C.Execution.K = 2;
  EXPECT_EQ(C.Execution.K, 2u);
  EXPECT_TRUE(C.validate().empty());
}

TEST(ConfigTest, MalformedEnvironmentReportsAndKeepsDefault) {
  Config Defaults = Config::defaults();
  ScopedEnv K("OPTABS_K", "banana");
  ScopedEnv Budget("OPTABS_STEP_BUDGET", "-5");
  std::vector<ConfigError> Errors;
  Config C = Config::fromEnv(&Errors);
  EXPECT_NE(messageFor(Errors, "execution.k"), "");
  EXPECT_NE(messageFor(Errors, "budgets.step_budget"), "");
  EXPECT_EQ(C.Execution.K, Defaults.Execution.K);
  EXPECT_EQ(C.Budgets.ForwardStepBudget, Defaults.Budgets.ForwardStepBudget);
}

TEST(ConfigTest, StepBudgetEnvArmsAllThreeBudgets) {
  ScopedEnv Budget("OPTABS_STEP_BUDGET", "12345");
  Config C = Config::fromEnv(nullptr);
  EXPECT_EQ(C.Budgets.ForwardStepBudget, 12345u);
  EXPECT_EQ(C.Budgets.BackwardStepBudget, 12345u);
  EXPECT_EQ(C.Budgets.SolverDecisionBudget, 12345u);
}

TEST(ConfigTest, TracerOptionsFromConfigMapsEveryField) {
  Config C = Config::defaults();
  C.Execution.K = 7;
  C.Execution.MaxItersPerQuery = 41;
  C.Execution.GroupQueries = false;
  C.Execution.ProductSoftCap = 99;
  C.Execution.TracesPerIteration = 11;
  C.Execution.Strategy = "greedy-grow";
  C.Execution.NumThreads = 6;
  C.Execution.ForwardCacheCapacity = 123;
  C.Budgets.TimeBudgetSeconds = 77;
  C.Budgets.ForwardStepBudget = 1000;
  C.Budgets.BackwardStepBudget = 2000;
  C.Budgets.SolverDecisionBudget = 3000;
  C.Budgets.MemoryBudgetBytes = 0;
  ASSERT_TRUE(C.validate().empty()) << formatConfigErrors(C.validate());

  tracer::TracerOptions O = tracer::TracerOptions::fromConfig(C);
  EXPECT_EQ(O.K, 7u);
  EXPECT_EQ(O.MaxItersPerQuery, 41u);
  EXPECT_FALSE(O.GroupQueries);
  EXPECT_EQ(O.ProductSoftCap, 99u);
  EXPECT_EQ(O.TracesPerIteration, 11u);
  EXPECT_EQ(O.Strategy, tracer::SearchStrategy::GreedyGrow);
  EXPECT_EQ(O.NumThreads, 6u);
  EXPECT_EQ(O.ForwardCacheCapacity, 123u);
  EXPECT_EQ(O.TimeBudgetSeconds, 77.0);
  EXPECT_EQ(O.ForwardStepBudget, 1000u);
  EXPECT_EQ(O.BackwardStepBudget, 2000u);
  EXPECT_EQ(O.SolverDecisionBudget, 3000u);
}

TEST(ConfigTest, StrategyNamesRoundTrip) {
  for (const char *Name : {"tracer", "eliminate-current", "greedy-grow"}) {
    EXPECT_TRUE(Config::isKnownStrategy(Name)) << Name;
    tracer::SearchStrategy S = tracer::SearchStrategy::Tracer;
    ASSERT_TRUE(tracer::parseStrategy(Name, S)) << Name;
    EXPECT_STREQ(tracer::strategyName(S), Name);
  }
  EXPECT_FALSE(Config::isKnownStrategy("definitely-not-a-strategy"));
}

//===----------------------------------------------------------------------===//
// support::ArgParser - the shared CLI front end.
//===----------------------------------------------------------------------===//

/// Runs \p Parser over \p Args (argv[0] prepended), returning the error.
std::string parseArgs(support::ArgParser &Parser,
                      std::vector<std::string> Args) {
  Args.insert(Args.begin(), "test-binary");
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  std::string Err;
  Parser.parse(static_cast<int>(Argv.size()), Argv.data(), Err);
  return Err;
}

TEST(ArgsTest, ParsesFlagsOptionsAndPositionals) {
  bool Verbose = false;
  unsigned K = 0;
  std::string Client;
  double Timeout = 0;
  std::vector<std::string> Positional;
  support::ArgParser Parser;
  Parser.flag("--verbose", &Verbose, "")
      .option("--k", &K, "")
      .option("--client", &Client, "")
      .option("--timeout", &Timeout, "")
      .positional(&Positional);
  std::string Err = parseArgs(
      Parser, {"--verbose", "--k=4", "--client=escape",
               "--timeout=2.5", "prog.ir"});
  EXPECT_EQ(Err, "");
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(K, 4u);
  EXPECT_EQ(Client, "escape");
  EXPECT_EQ(Timeout, 2.5);
  ASSERT_EQ(Positional.size(), 1u);
  EXPECT_EQ(Positional[0], "prog.ir");
}

TEST(ArgsTest, RejectsUnknownOption) {
  support::ArgParser Parser;
  std::string Err = parseArgs(Parser, {"--no-such-flag"});
  EXPECT_EQ(Err, "unknown option '--no-such-flag'");
}

TEST(ArgsTest, RejectsMalformedValues) {
  unsigned K = 7;
  support::ArgParser Parser;
  Parser.option("--k", &K, "");
  std::string Err = parseArgs(Parser, {"--k=banana"});
  EXPECT_NE(Err.find("invalid value 'banana' for '--k'"), std::string::npos)
      << Err;
  EXPECT_EQ(K, 7u); // the target is untouched on failure
}

TEST(ArgsTest, RejectsMissingAndUnexpectedValues) {
  bool Flag = false;
  std::string S;
  support::ArgParser Parser;
  Parser.flag("--audit", &Flag, "").option("--client", &S, "");
  EXPECT_EQ(parseArgs(Parser, {"--client"}),
            "option '--client' requires a value ('--client=...')");
  EXPECT_EQ(parseArgs(Parser, {"--audit=yes"}),
            "option '--audit' takes no value");
}

TEST(ArgsTest, RejectsPositionalWithoutSink) {
  support::ArgParser Parser;
  EXPECT_EQ(parseArgs(Parser, {"stray"}), "unexpected argument 'stray'");
}

TEST(ArgsTest, CallbackErrorsPropagate) {
  support::ArgParser Parser;
  Parser.callback("--faults",
                  [](const std::string &Value, std::string &Detail) {
                    Detail = "bad spec '" + Value + "'";
                    return false;
                  });
  std::string Err = parseArgs(Parser, {"--faults=xyz"});
  EXPECT_NE(Err.find("invalid value 'xyz' for '--faults'"),
            std::string::npos)
      << Err;
  EXPECT_NE(Err.find("bad spec 'xyz'"), std::string::npos) << Err;
}

} // namespace
