//===- ChaosTest.cpp - Kill-a-shard chaos harness -------------------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// The multi-process serving stack against real process death: a
// ShardRouter over real `optabs-serve` workers (spawned from
// OPTABS_SERVE_BIN), with SIGKILL injected before and during drain. The
// property under test is the one DESIGN.md §13 argues for: every
// submitted job eventually resolves, and the emitted result lines are
// bitwise identical to a single-process oracle run - requeueing work onto
// a fresh shard cannot change a verdict, because §6 grouping makes
// verdicts batch-composition-independent. Run at 1 and 8 worker threads,
// per the acceptance gate.
//
// Also here: the optabs-serve SIGTERM test (the signal must run the same
// graceful path as the "shutdown" op, metrics dump included).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/ShardRouter.h"
#include "service/Transport.h"
#include "support/Subprocess.h"
#include "tracer/EventTrace.h"

#include "gtest/gtest.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <set>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

namespace optabs {
namespace service {
namespace {

using tracer::JsonObject;

class ChaosTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() { signal(SIGPIPE, SIG_IGN); }
};

/// The figure-6 shape, one check per procedure; \p Salt keeps the
/// programs distinct so they register (and hash) independently.
std::string makeProgram(unsigned Procs, unsigned Salt) {
  std::string Text = "proc main {\n";
  for (unsigned I = 1; I <= Procs; ++I)
    Text += "  call p" + std::to_string(I) + ";\n";
  Text += "}\n";
  for (unsigned I = 1; I <= Procs; ++I) {
    std::string N = std::to_string(I) + "s" + std::to_string(Salt);
    std::string P = std::to_string(I);
    Text += "proc p" + P + " {\n";
    Text += "  u" + P + " = new ha" + N + ";\n";
    Text += "  v" + P + " = new hb" + N + ";\n";
    Text += "  v" + P + ".f = u" + P + ";\n";
    Text += "  check(u" + P + ");\n";
    Text += "}\n";
  }
  return Text;
}

struct Script {
  std::vector<std::string> Setup; ///< registers, opens, submits
  size_t Jobs = 0;
};

/// \p Programs programs x \p Clients escape tenants each, one job per
/// check. Tenants are distinct (program, client) pairs, so they spread
/// over shards by hash.
Script makeScript(unsigned Programs, unsigned Procs, unsigned Clients) {
  Script S;
  for (unsigned P = 0; P < Programs; ++P) {
    JsonObject Reg;
    Reg.field("op", "register-program");
    Reg.field("name", "prog" + std::to_string(P));
    Reg.field("text", makeProgram(Procs, P));
    S.Setup.push_back(Reg.str());
  }
  uint64_t Session = 0;
  for (unsigned P = 0; P < Programs; ++P) {
    for (unsigned C = 0; C < Clients; ++C) {
      JsonObject Open;
      Open.field("op", "open-session");
      Open.field("program", "prog" + std::to_string(P));
      Open.field("client", "escape");
      Open.field("k", 2);
      Open.field("max-pending", 1000);
      S.Setup.push_back(Open.str());
      ++Session;
      for (unsigned J = 0; J < Procs; ++J) {
        JsonObject Sub;
        Sub.field("op", "submit");
        Sub.field("session", Session);
        Sub.field("check", J);
        S.Setup.push_back(Sub.str());
        ++S.Jobs;
      }
    }
  }
  return S;
}

ProcessShardHost::Options hostOptions(unsigned WorkerThreads) {
  ProcessShardHost::Options O;
  O.ServeBinary = OPTABS_SERVE_BIN;
  O.SocketDir = "/tmp";
  O.WorkerArgs = {"--threads=" + std::to_string(WorkerThreads)};
  O.ConnectTimeoutMs = 30000; // sanitizer builds start slowly
  return O;
}

ShardRouterOptions routerOptions(unsigned Shards) {
  ShardRouterOptions O;
  O.NumShards = Shards;
  O.RequestTimeoutMs = 120000;
  O.MaxRequestRetries = 3;
  O.BackoffInitialMs = 20; // fast ladders: chaos tests restart a lot
  O.BackoffMaxMs = 200;
  return O;
}

void runAll(ShardRouter &R, const std::vector<std::string> &Lines,
            std::vector<std::string> &Out) {
  for (const std::string &L : Lines)
    ASSERT_TRUE(R.handleLine(L, Out)) << L;
}

std::vector<std::string> resultLines(const std::vector<std::string> &Out) {
  std::vector<std::string> R;
  for (const std::string &L : Out)
    if (L.find("\"op\":\"result\"") != std::string::npos)
      R.push_back(L);
  return R;
}

/// The single-process oracle: the same script through one worker, no
/// chaos. Every multi-shard run must reproduce these lines bitwise.
std::vector<std::string> oracleResults(const Script &S) {
  ProcessShardHost Host(hostOptions(/*WorkerThreads=*/1));
  ShardRouter R(routerOptions(/*Shards=*/1), Host);
  std::string Err;
  EXPECT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  runAll(R, S.Setup, Out);
  R.handleLine("{\"op\":\"drain\"}", Out);
  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
  return resultLines(Out);
}

void expectAllDone(const std::vector<std::string> &Results, size_t Jobs) {
  ASSERT_EQ(Results.size(), Jobs);
  for (const std::string &L : Results)
    EXPECT_NE(L.find("\"status\":\"done\""), std::string::npos) << L;
}

//===----------------------------------------------------------------------===//
// Topology identity without chaos
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, TwoShardsMatchSingleProcessOracle) {
  Script S = makeScript(/*Programs=*/2, /*Procs=*/6, /*Clients=*/2);
  std::vector<std::string> Oracle = oracleResults(S);
  expectAllDone(Oracle, S.Jobs);

  ProcessShardHost Host(hostOptions(1));
  ShardRouter R(routerOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  runAll(R, S.Setup, Out);
  R.handleLine("{\"op\":\"drain\"}", Out);
  EXPECT_EQ(resultLines(Out), Oracle);
  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
}

//===----------------------------------------------------------------------===//
// SIGKILL before drain: deterministic requeue
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, KillEveryShardBeforeDrainRequeuesAndMatchesOracle) {
  Script S = makeScript(2, 6, 2);
  std::vector<std::string> Oracle = oracleResults(S);
  expectAllDone(Oracle, S.Jobs);

  ProcessShardHost Host(hostOptions(1));
  ShardRouter R(routerOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  runAll(R, S.Setup, Out);

  // Both workers die with every job still queued: the drain must
  // restart them, requeue everything, and still match the oracle.
  R.killShardForTesting(0);
  R.killShardForTesting(1);
  std::vector<std::string> DrainOut;
  R.handleLine("{\"op\":\"drain\"}", DrainOut);
  expectAllDone(resultLines(DrainOut), S.Jobs);
  EXPECT_EQ(resultLines(DrainOut), Oracle);
  // The requeue is surfaced, not silent: every job was requeued once.
  EXPECT_EQ(DrainOut.back(),
            "{\"v\":1,\"ok\":true,\"op\":\"drain\",\"results\":" +
                std::to_string(S.Jobs) +
                ",\"requeued\":" + std::to_string(S.Jobs) + "}");
  EXPECT_EQ(R.stats().Restarts, 2u);

  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
}

//===----------------------------------------------------------------------===//
// SIGKILL mid-drain: the acceptance scenario, at 1 and 8 worker threads
//===----------------------------------------------------------------------===//

void killShardMidDrain(unsigned WorkerThreads) {
  Script S = makeScript(2, 10, 3);
  std::vector<std::string> Oracle = oracleResults(S);
  expectAllDone(Oracle, S.Jobs);

  ProcessShardHost Host(hostOptions(WorkerThreads));
  ShardRouter R(routerOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  runAll(R, S.Setup, Out);

  // Drain on one thread; SIGKILL a worker from another while its batch
  // is (very likely) in flight. Whenever the kill lands - before, during
  // or after the batch - every job must resolve identically.
  std::vector<std::string> DrainOut;
  std::thread Drainer(
      [&] { R.handleLine("{\"op\":\"drain\"}", DrainOut); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Kill a shard that definitely holds jobs (all tenants use client
  // "escape", so prog0's shard is known). Pid-exact SIGKILL via the
  // host is the thread-safe seam.
  Host.killWorker(R.shardFor("prog0", "escape"));
  Drainer.join();

  expectAllDone(resultLines(DrainOut), S.Jobs);
  EXPECT_EQ(resultLines(DrainOut), Oracle);

  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
}

TEST_F(ChaosTest, KillShardMidDrainResolvesIdentically1Thread) {
  killShardMidDrain(1);
}

TEST_F(ChaosTest, KillShardMidDrainResolvesIdentically8Threads) {
  killShardMidDrain(8);
}

//===----------------------------------------------------------------------===//
// Socket-file hygiene across SIGKILL restarts
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, KilledWorkersLeaveNoStaleSocketFiles) {
  std::string Dir = "/tmp/optabs-chaos-socks-" +
                    std::to_string(static_cast<long>(::getpid()));
  ::mkdir(Dir.c_str(), 0700);
  {
    ProcessShardHost::Options HO = hostOptions(1);
    HO.SocketDir = Dir;
    ProcessShardHost Host(HO);
    ShardRouter R(routerOptions(2), Host);
    std::string Err;
    ASSERT_TRUE(R.start(Err)) << Err;
    std::vector<std::string> Out;
    JsonObject Reg;
    Reg.field("op", "register-program");
    Reg.field("name", "prog0");
    Reg.field("text", makeProgram(2, 0));
    R.handleLine(Reg.str(), Out);
    // SIGKILLed workers cannot unlink their own sockets; the next
    // broadcast forces both shards through the restart path.
    R.killShardForTesting(0);
    R.killShardForTesting(1);
    JsonObject Reg1;
    Reg1.field("op", "register-program");
    Reg1.field("name", "prog1");
    Reg1.field("text", makeProgram(2, 1));
    R.handleLine(Reg1.str(), Out);
    EXPECT_EQ(R.stats().Restarts, 2u);
    std::vector<std::string> Dropped;
    R.handleLine("{\"op\":\"shutdown\"}", Dropped);
  }
  // Host destroyed: every incarnation's socket file must be gone.
  size_t Leftover = 0;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string N = E->d_name;
      if (N != "." && N != "..")
        ++Leftover;
    }
    ::closedir(D);
  }
  EXPECT_EQ(Leftover, 0u);
  ::rmdir(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// SIGTERM on optabs-serve: the graceful path, artifacts included
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, SigtermRunsTheGracefulShutdownPath) {
  std::string Tag = std::to_string(static_cast<long>(::getpid()));
  std::string Sock = "/tmp/optabs-chaos-term-" + Tag + ".sock";
  std::string Metrics = "/tmp/optabs-chaos-term-" + Tag + ".prom";
  std::remove(Metrics.c_str());

  std::string Err;
  support::ChildProcess Serve = support::ChildProcess::spawn(
      {OPTABS_SERVE_BIN, "--listen=unix:" + Sock, "--threads=1",
       "--metrics=" + Metrics},
      Err);
  ASSERT_TRUE(Serve.valid()) << Err;

  ListenSpec Spec;
  ASSERT_TRUE(ListenSpec::parse("unix:" + Sock, Spec, Err)) << Err;
  LineChannel Ch = connectChannel(Spec, 30000, Err);
  ASSERT_TRUE(Ch.valid()) << Err;
  ASSERT_TRUE(Ch.writeLine("{\"op\":\"ping\"}"));
  std::string Resp;
  ASSERT_EQ(Ch.readLine(Resp, 30000), LineChannel::ReadStatus::Line);
  EXPECT_NE(Resp.find("\"server\":\"optabs-serve\""), std::string::npos);

  // SIGTERM mid-connection must run the same graceful path as the
  // "shutdown" op: exit 0 and write the metrics dump.
  Serve.kill(SIGTERM);
  int Status = Serve.reap(30000);
  ASSERT_NE(Status, -1) << "server did not exit after SIGTERM";
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_EQ(::access(Metrics.c_str(), F_OK), 0)
      << "graceful path skipped the metrics dump";
  std::remove(Metrics.c_str());
}

//===----------------------------------------------------------------------===//
// Work stealing: re-homed sessions cannot change a verdict
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, WorkStealingRehomesSessionsAndMatchesOracle) {
  // One program, three sessions: every tenant hashes to the same shard,
  // so with two shards one is deep and one is idle - the imbalance the
  // stealer exists for.
  Script S = makeScript(/*Programs=*/1, /*Procs=*/6, /*Clients=*/3);
  std::vector<std::string> Oracle = oracleResults(S);
  expectAllDone(Oracle, S.Jobs);

  ProcessShardHost Host(hostOptions(1));
  ShardRouterOptions RO = routerOptions(2);
  RO.StealThreshold = 1; // steal as soon as any imbalance shows
  ShardRouter R(RO, Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  runAll(R, S.Setup, Out);
  R.handleLine("{\"op\":\"drain\"}", Out);

  // Bitwise identity to the single-process oracle - §6 grouping makes
  // verdicts batch-composition-independent, so where a session runs can
  // never show in its result lines.
  expectAllDone(resultLines(Out), S.Jobs);
  EXPECT_EQ(resultLines(Out), Oracle);
  // And the steal actually happened, visibly.
  EXPECT_GE(R.stats().Steals, 1u);
  EXPECT_GE(R.stats().StolenJobs, 6u);

  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
}

//===----------------------------------------------------------------------===//
// SIGKILL + warm restart from the persistent cache tier
//===----------------------------------------------------------------------===//

/// A scripted JSONL exchange with one spawned optabs-serve: every request
/// reads exactly one response, except drain (which streams result lines
/// first). Collects result lines and the last stats response.
struct ServeClient {
  support::ChildProcess Proc;
  LineChannel Ch;

  static ServeClient spawn(const std::string &Sock,
                           const std::vector<std::string> &ExtraArgs) {
    ServeClient C;
    std::string Err;
    std::vector<std::string> Argv = {OPTABS_SERVE_BIN,
                                     "--listen=unix:" + Sock,
                                     "--threads=1"};
    for (const std::string &A : ExtraArgs)
      Argv.push_back(A);
    C.Proc = support::ChildProcess::spawn(Argv, Err);
    EXPECT_TRUE(C.Proc.valid()) << Err;
    ListenSpec Spec;
    EXPECT_TRUE(ListenSpec::parse("unix:" + Sock, Spec, Err)) << Err;
    C.Ch = connectChannel(Spec, 30000, Err);
    EXPECT_TRUE(C.Ch.valid()) << Err;
    return C;
  }

  /// One request, one response line.
  std::string rpc(const std::string &Line) {
    EXPECT_TRUE(Ch.writeLine(Line)) << Line;
    std::string Resp;
    EXPECT_EQ(Ch.readLine(Resp, 120000), LineChannel::ReadStatus::Line)
        << Line;
    return Resp;
  }

  /// Drain: result lines stream first, then the drain summary.
  std::vector<std::string> drain() {
    EXPECT_TRUE(Ch.writeLine("{\"op\":\"drain\"}"));
    std::vector<std::string> Results;
    for (;;) {
      std::string L;
      if (Ch.readLine(L, 120000) != LineChannel::ReadStatus::Line) {
        ADD_FAILURE() << "connection died mid-drain";
        break;
      }
      if (L.find("\"op\":\"drain\"") != std::string::npos)
        break;
      if (L.find("\"op\":\"result\"") != std::string::npos)
        Results.push_back(L);
    }
    return Results;
  }
};

/// One serve lifetime: register prog0, answer every check, return the
/// result lines plus the final forward_runs / verdicts_replayed counters.
struct ServeLife {
  std::vector<std::string> Results;
  uint64_t ForwardRuns = 0;
  uint64_t VerdictsReplayed = 0;
};

ServeLife runServeLife(ServeClient &C, const std::string &Text,
                       unsigned Checks) {
  ServeLife Life;
  JsonObject Reg;
  Reg.field("op", "register-program");
  Reg.field("name", "prog0");
  Reg.field("text", Text);
  EXPECT_NE(C.rpc(Reg.str()).find("\"ok\":true"), std::string::npos);
  EXPECT_NE(
      C.rpc("{\"op\":\"open-session\",\"program\":\"prog0\","
            "\"client\":\"escape\",\"k\":2}")
          .find("\"ok\":true"),
      std::string::npos);
  for (unsigned J = 0; J < Checks; ++J) {
    JsonObject Sub;
    Sub.field("op", "submit");
    Sub.field("session", 1);
    Sub.field("check", J);
    EXPECT_NE(C.rpc(Sub.str()).find("\"ok\":true"), std::string::npos);
  }
  Life.Results = C.drain();
  std::string Stats = C.rpc("{\"op\":\"stats\"}");
  JsonLine S;
  std::string Err;
  EXPECT_TRUE(JsonLine::parse(Stats, S, Err)) << Stats;
  Life.ForwardRuns = S.getUInt("forward_runs").value_or(0);
  Life.VerdictsReplayed = S.getUInt("verdicts_replayed").value_or(0);
  return Life;
}

TEST_F(ChaosTest, SigkilledWorkerRestartsWarmFromTheCacheTier) {
  std::string Tag = std::to_string(static_cast<long>(::getpid()));
  std::string Dir = "/tmp/optabs-chaos-warm-" + Tag;
  ::mkdir(Dir.c_str(), 0700);
  std::string Text = makeProgram(/*Procs=*/6, /*Salt=*/0);
  const unsigned Checks = 6;

  // The single-process oracle: no cache tier at all.
  ServeLife Oracle;
  {
    ServeClient C =
        ServeClient::spawn("/tmp/optabs-warm-oracle-" + Tag + ".sock", {});
    Oracle = runServeLife(C, Text, Checks);
    C.rpc("{\"op\":\"shutdown\"}");
    C.Proc.reap(30000);
  }
  ASSERT_EQ(Oracle.Results.size(), Checks);
  ASSERT_GT(Oracle.ForwardRuns, 0u);

  // First life: same script with the cache tier armed. Persist, then
  // SIGKILL - the crash the warm restart must absorb. SIGKILL cannot run
  // any shutdown hook, so the snapshot on disk is exactly what the
  // explicit persist wrote (the atomic-commit contract keeps it whole).
  {
    ServeClient C = ServeClient::spawn(
        "/tmp/optabs-warm-life1-" + Tag + ".sock", {"--cache-dir=" + Dir});
    ServeLife Cold = runServeLife(C, Text, Checks);
    EXPECT_EQ(Cold.Results, Oracle.Results);
    std::string P = C.rpc("{\"op\":\"cache\",\"action\":\"persist\"}");
    EXPECT_NE(P.find("\"ok\":true"), std::string::npos) << P;
    C.Proc.kill(SIGKILL);
    ASSERT_NE(C.Proc.reap(30000), -1);
  }

  // Second life: the restarted worker warms from the snapshot at
  // register time. Verdict lines are bitwise identical to the oracle and
  // every query is answered by replay - zero forward fixpoints, strictly
  // fewer than the cold run.
  {
    ServeClient C = ServeClient::spawn(
        "/tmp/optabs-warm-life2-" + Tag + ".sock", {"--cache-dir=" + Dir});
    ServeLife Warm = runServeLife(C, Text, Checks);
    EXPECT_EQ(Warm.Results, Oracle.Results);
    EXPECT_EQ(Warm.ForwardRuns, 0u);
    EXPECT_LT(Warm.ForwardRuns, Oracle.ForwardRuns);
    EXPECT_EQ(Warm.VerdictsReplayed, Checks);
    C.rpc("{\"op\":\"shutdown\"}");
    C.Proc.reap(30000);
  }

  std::string Cleanup = "rm -rf '" + Dir + "'";
  (void)::system(Cleanup.c_str());
}

} // namespace
} // namespace service
} // namespace optabs
