//===- EngineEdgeTest.cpp - Edge cases of the forward engine and parser -------===//

#include "dataflow/Forward.h"

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include "gtest/gtest.h"

#include <set>

namespace {

using namespace optabs;
using namespace optabs::ir;

Program parse(const std::string &Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// Counting client (same as ForwardTest's).
struct CounterClient {
  struct Param {
    unsigned Max = 5;
  };
  using State = unsigned;
  struct StateHash {
    size_t operator()(unsigned S) const { return S; }
  };
  State transfer(const Command &Cmd, const State &In, const Param &P) const {
    if (Cmd.Kind == CmdKind::New)
      return std::min(In + 1, P.Max);
    if (Cmd.Kind == CmdKind::Null)
      return 0;
    return In;
  }
};

TEST(ForwardEdge, EmptyMainHasNoCheckStates) {
  Program P = parse("proc main { }");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  EXPECT_GE(FA.stats().NumRounds, 1u);
}

TEST(ForwardEdge, AssumeIsIdentity) {
  Program P = parse("proc main { assume(*); x = new h1; assume(*); check(x); }");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  auto States = FA.statesAtCheck(CheckId(0));
  ASSERT_EQ(States.size(), 1u);
  EXPECT_EQ(States[0], 1u);
}

TEST(ForwardEdge, MutualRecursionTerminates) {
  Program P = parse(R"(
    proc main { call even; check(x); }
    proc even { if { x = new h1; call odd; } }
    proc odd { x = new h1; call even; }
  )");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  auto States = FA.statesAtCheck(CheckId(0));
  // 0 (skip), or any saturating count of News along even/odd chains.
  EXPECT_FALSE(States.empty());
  for (unsigned S : States)
    EXPECT_LE(S, 5u);
}

TEST(ForwardEdge, CheckInsideStarBody) {
  Program P = parse(R"(
    proc main { loop { check(x); x = new h1; } }
  )");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  std::vector<unsigned> AtCheck = FA.statesAtCheck(CheckId(0));
  std::set<unsigned> Seen(AtCheck.begin(), AtCheck.end());
  EXPECT_EQ(Seen, (std::set<unsigned>{0, 1, 2, 3, 4, 5}));
  // Each is witnessed by a trace ending at the in-loop check; earlier
  // iterations contribute a check and a new command each.
  for (unsigned S : Seen) {
    auto T = FA.extractTrace(CheckId(0), S);
    ASSERT_TRUE(T.has_value());
    EXPECT_EQ(FA.replay(*T, 0).back(), S);
    EXPECT_EQ(T->size(), 2 * S);
  }
}

TEST(ForwardEdge, ReplayOnEmptyTrace) {
  Program P = parse("proc main { check(x); }");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(3);
  auto T = FA.extractTrace(CheckId(0), 3u);
  ASSERT_TRUE(T.has_value());
  EXPECT_TRUE(T->empty());
  auto States = FA.replay(*T, 3);
  ASSERT_EQ(States.size(), 1u);
  EXPECT_EQ(States[0], 3u);
}

TEST(ForwardEdge, ExtractTracesAreDistinctAndCapped) {
  Program P = parse(R"(
    proc main {
      choice { x = new h1; x = null; } or { x = null; }
        or { assume(*); x = null; }
      check(x);
    }
  )");
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  auto Traces = FA.extractTraces(CheckId(0), 0u, 3);
  EXPECT_GE(Traces.size(), 2u);
  EXPECT_LE(Traces.size(), 3u);
  std::set<ir::Trace> Unique(Traces.begin(), Traces.end());
  EXPECT_EQ(Unique.size(), Traces.size());
  for (const auto &T : Traces)
    EXPECT_EQ(FA.replay(T, 0).back(), 0u);
}

TEST(ForwardEdge, DeeplyNestedStructure) {
  std::string Src = "proc main {\n";
  for (int I = 0; I < 30; ++I)
    Src += "  loop { if {\n";
  Src += "  x = new h1;\n";
  for (int I = 0; I < 30; ++I)
    Src += "  } }\n";
  Src += "  check(x);\n}\n";
  Program P = parse(Src);
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  auto States = FA.statesAtCheck(CheckId(0));
  EXPECT_FALSE(States.empty());
}

TEST(ParserEdge, IdentifiersWithDigitsUnderscoresDollars) {
  Program P = parse(R"(
    proc main { _x1 = new h$2; $tmp = _x1; check($tmp); }
  )");
  EXPECT_TRUE(P.findVar("_x1").isValid());
  EXPECT_TRUE(P.findVar("$tmp").isValid());
  EXPECT_TRUE(P.findAlloc("h$2").isValid());
}

TEST(ParserEdge, CommentsEverywhere) {
  Program P = parse(R"(
    // leading comment
    proc main { // trailing
      x = new h1; // after statement
      // between statements
      check(x);
    } // after brace
    // at end
  )");
  EXPECT_EQ(P.numChecks(), 1u);
}

TEST(ParserEdge, LargeFlatProgramParsesQuickly) {
  std::string Src = "proc main {\n";
  for (int I = 0; I < 5000; ++I)
    Src += "  v" + std::to_string(I % 50) + " = new h" +
           std::to_string(I % 20) + ";\n";
  Src += "}\n";
  Program P = parse(Src);
  EXPECT_EQ(P.numCommands(), 5000u);
  EXPECT_EQ(P.numAllocs(), 20u);
}

TEST(ParserEdge, ChoiceWithManyBranches) {
  std::string Src = "proc main {\n  choice { x = null; }";
  for (int I = 0; I < 20; ++I)
    Src += " or { x = new h" + std::to_string(I) + "; }";
  Src += "\n  check(x);\n}\n";
  Program P = parse(Src);
  CounterClient C;
  dataflow::ForwardAnalysis<CounterClient> FA(P, C, {});
  FA.run(0);
  std::vector<unsigned> AtCheck = FA.statesAtCheck(CheckId(0));
  std::set<unsigned> Seen(AtCheck.begin(), AtCheck.end());
  EXPECT_EQ(Seen, (std::set<unsigned>{0, 1}));
}

TEST(ForwardEdge, EscapeStateSpaceStaysBoundedOnCanonicalUnits) {
  // Two branchy-but-canonicalizing regions in sequence must not multiply
  // downstream states (the property the benchmark generator relies on).
  Program P = parse(R"(
    proc main {
      choice { a = new h1; } or { a = new h2; }
      check(a);
      a = null;
      choice { b = new h3; } or { b = new h4; }
      check(b);
      b = null;
      check(a);
    }
  )");
  escape::EscapeAnalysis A(P);
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(P, A,
                                                       A.paramFromBits({}));
  FA.run(A.initialState());
  // After both resets, exactly one state remains at the final check.
  EXPECT_EQ(FA.statesAtCheck(CheckId(2)).size(), 1u);
}

} // namespace
