//===- StrategyTest.cpp - Tests for search strategies and multi-trace ---------===//

#include "tracer/QueryDriver.h"

#include "escape/Escape.h"
#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using tracer::QueryDriver;
using tracer::SearchStrategy;
using tracer::TracerOptions;
using tracer::Verdict;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

// Needs both sites local; a third site is irrelevant.
const char *ChainSrc = R"(
  proc main {
    u = new h1;
    v = new h2;
    w = new h3;
    v.f = u;
    check(u);
  }
)";

const char *EscapedSrc = R"(
  global g;
  proc main { u = new h1; g = u; check(u); }
)";

// A 3-way confuser: proving needs all three sites local; the failure has
// three independent causes, so multi-trace learning converges faster.
const char *ConfuserSrc = R"(
  proc main {
    choice { v = new h1; } or { v = new h2; } or { v = new h3; }
    check(v);
  }
)";

TEST(Strategy, EliminateCurrentIsEventuallyOptimal) {
  Program P = parse(ChainSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = SearchStrategy::EliminateCurrent;
  Options.MaxItersPerQuery = 200; // 2^3 family: feasible to exhaust
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  EXPECT_EQ(Outcomes[0].CheapestCost, 2u); // still minimum-cost
  // But it had to enumerate: strictly more iterations than TRACER's 3.
  EXPECT_GT(Outcomes[0].Iterations, 3u);
}

TEST(Strategy, EliminateCurrentProvesImpossibilityByExhaustion) {
  Program P = parse(EscapedSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = SearchStrategy::EliminateCurrent;
  Options.MaxItersPerQuery = 10; // 2^1 family
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Impossible);
  EXPECT_EQ(Outcomes[0].Iterations, 2u); // both abstractions tried
}

TEST(Strategy, EliminateCurrentExhaustsBudgetOnLargerFamilies) {
  Program P = parse(ConfuserSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = SearchStrategy::EliminateCurrent;
  Options.MaxItersPerQuery = 5; // needs 1+3+3 = 7 runs up to cost 2
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
}

TEST(Strategy, GreedyGrowProvesButNotMinimally) {
  Program P = parse(ChainSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = SearchStrategy::GreedyGrow;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  // Whatever it found must actually be >= the optimum (2 L-sites).
  EXPECT_GE(Outcomes[0].CheapestCost, 2u);
}

TEST(Strategy, GreedyGrowCannotConcludeImpossibility) {
  Program P = parse(EscapedSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = SearchStrategy::GreedyGrow;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  // It stalled: no new blame after at most a couple of iterations.
  EXPECT_LE(Outcomes[0].Iterations, 3u);
}

TEST(Strategy, NamesAreStable) {
  EXPECT_STREQ(tracer::strategyName(SearchStrategy::Tracer), "tracer");
  EXPECT_STREQ(tracer::strategyName(SearchStrategy::EliminateCurrent),
               "eliminate-current");
  EXPECT_STREQ(tracer::strategyName(SearchStrategy::GreedyGrow),
               "greedy-grow");
}

struct MultiTraceCase {
  unsigned TracesPerIteration;
};

class MultiTraceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiTraceTest, ConfuserStaysCorrectAndConverges) {
  Program P = parse(ConfuserSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.K = 1;
  Options.TracesPerIteration = GetParam();
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  EXPECT_EQ(Outcomes[0].CheapestCost, 3u);
  // With one trace per iteration, each iteration blames one site: 4
  // iterations. With three or more, one iteration suffices to learn all
  // three causes, so the second run already proves.
  if (GetParam() == 1) {
    EXPECT_EQ(Outcomes[0].Iterations, 4u);
  }
  if (GetParam() >= 3) {
    EXPECT_EQ(Outcomes[0].Iterations, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(TraceCounts, MultiTraceTest,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(MultiTrace, ImpossibleQueriesStillDetected) {
  Program P = parse(EscapedSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.TracesPerIteration = 4;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Impossible);
}

} // namespace
