//===- DriverBudgetTest.cpp - Budget and bookkeeping semantics of the driver --===//

#include "tracer/QueryDriver.h"

#include "escape/Escape.h"
#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using tracer::QueryDriver;
using tracer::TracerOptions;
using tracer::Verdict;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

const char *TwoSiteSrc = R"(
  proc main {
    u = new h1;
    v = new h2;
    v.f = u;
    check(u);
  }
)";

TEST(DriverBudget, ZeroTimeBudgetLeavesEverythingUnresolved) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.TimeBudgetSeconds = 0;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_EQ(Outcomes[0].Iterations, 0u);
  EXPECT_EQ(Driver.stats().ForwardRuns, 0u);
}

TEST(DriverBudget, OneIterationBudgetStopsAfterFirstRun) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.MaxItersPerQuery = 1;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_EQ(Outcomes[0].Iterations, 1u);
  EXPECT_EQ(Driver.stats().ForwardRuns, 1u);
  EXPECT_EQ(Driver.stats().BackwardRuns, 0u); // budget hit before learning
}

TEST(DriverBudget, TracesPerIterationZeroBehavesLikeOne) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.TracesPerIteration = 0;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
}

TEST(DriverBudget, SecondsAreAccountedPerQuery) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_GE(Outcomes[0].Seconds, 0.0);
  EXPECT_LE(Outcomes[0].Seconds, Driver.totalSeconds() + 1e-6);
}

TEST(DriverBudget, EmptyQueryListIsANoop) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({});
  EXPECT_TRUE(Outcomes.empty());
  EXPECT_EQ(Driver.stats().ForwardRuns, 0u);
}

TEST(DriverBudget, RepeatedRunsAreIndependent) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto First = Driver.run({CheckId(0)});
  auto Second = Driver.run({CheckId(0)});
  EXPECT_EQ(First[0].V, Second[0].V);
  EXPECT_EQ(First[0].Iterations, Second[0].Iterations);
  EXPECT_EQ(First[0].CheapestParam, Second[0].CheapestParam);
}

TEST(DriverBudget, GreedyRespectsIterationBudget) {
  Program P = parse(R"(
    proc main {
      choice { v = new h1; } or { v = new h2; } or { v = new h3; }
      check(v);
    }
  )");
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.Strategy = tracer::SearchStrategy::GreedyGrow;
  Options.K = 1; // one blamed site per iteration
  Options.MaxItersPerQuery = 2;
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_LE(Outcomes[0].Iterations, 2u);
}

TEST(DriverBudget, MaxFormulaCubesIsTracked) {
  Program P = parse(TwoSiteSrc);
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.K = 0; // exact mode keeps several cubes
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  Driver.run({CheckId(0)});
  EXPECT_GE(Driver.stats().MaxFormulaCubes, 2u);
}

} // namespace
