//===- EscapeTest.cpp - Unit tests for the thread-escape client --------------===//

#include "escape/Escape.h"

#include "ir/Parser.h"
#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs::ir;
using namespace optabs::escape;
using optabs::BitSet;
using optabs::Prng;
using optabs::formula::AtomId;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

EscParam paramOf(const Program &P, std::initializer_list<const char *> LSites) {
  EscParam Prm;
  Prm.LSites = BitSet(P.numAllocs());
  for (const char *Name : LSites) {
    AllocId H = P.findAlloc(Name);
    EXPECT_TRUE(H.isValid()) << Name;
    Prm.LSites.set(H.index());
  }
  return Prm;
}

AbsVal varVal(const EscapeAnalysis &A, const Program &P, const EscState &D,
              const char *Name) {
  return static_cast<AbsVal>(D.Vals[A.locOfVar(P.findVar(Name))]);
}

AbsVal fieldVal(const EscapeAnalysis &A, const Program &P, const EscState &D,
                const char *Name) {
  return static_cast<AbsVal>(D.Vals[A.locOfField(P.findField(Name))]);
}

/// The Figure 6 program.
const char *Fig6Src = R"(
  proc main {
    u = new h1;
    v = new h2;
    v.f = u;
    check(u);
  }
)";

TEST(Escape, TransferFollowsFigure5OnFig6Program) {
  Program P = parse(Fig6Src);
  EscapeAnalysis A(P);

  // (b2) of Figure 6: p = [h1 -> L, h2 -> E].
  EscParam Prm = paramOf(P, {"h1"});
  EscState D = A.initialState();
  D = A.transfer(P.command(CommandId(0)), D, Prm); // u = new h1
  EXPECT_EQ(varVal(A, P, D, "u"), AbsVal::L);
  D = A.transfer(P.command(CommandId(1)), D, Prm); // v = new h2
  EXPECT_EQ(varVal(A, P, D, "v"), AbsVal::E);
  D = A.transfer(P.command(CommandId(2)), D, Prm); // v.f = u: E.f := L
  // Storing a local into an escaped object: esc() collapses the state.
  EXPECT_EQ(varVal(A, P, D, "u"), AbsVal::E);
  EXPECT_EQ(varVal(A, P, D, "v"), AbsVal::E);
  EXPECT_EQ(fieldVal(A, P, D, "f"), AbsVal::N);

  // p = [h1 -> L, h2 -> L]: the cheapest proving abstraction of Figure 6.
  EscParam Both = paramOf(P, {"h1", "h2"});
  EscState E = A.initialState();
  E = A.transfer(P.command(CommandId(0)), E, Both);
  E = A.transfer(P.command(CommandId(1)), E, Both);
  E = A.transfer(P.command(CommandId(2)), E, Both); // L.f := L, f was N
  EXPECT_EQ(varVal(A, P, E, "u"), AbsVal::L);
  EXPECT_EQ(fieldVal(A, P, E, "f"), AbsVal::L);
}

TEST(Escape, GlobalStorePublishesLocals) {
  Program P = parse(R"(
    global g;
    proc main {
      a = new h1;
      b = new h2;
      b.f = b;
      g = a;
      check(b);
    }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {"h1", "h2"});
  EscState D = A.initialState();
  for (uint32_t I = 0; I < 4; ++I)
    D = A.transfer(P.command(CommandId(I)), D, Prm);
  // g = a escapes a and collapses every L, including b; fields reset.
  EXPECT_EQ(varVal(A, P, D, "a"), AbsVal::E);
  EXPECT_EQ(varVal(A, P, D, "b"), AbsVal::E);
  EXPECT_EQ(fieldVal(A, P, D, "f"), AbsVal::N);
}

TEST(Escape, GlobalStoreOfEscapedIsNoop) {
  Program P = parse(R"(
    global g;
    proc main { a = new h1; b = g; g = b; check(a); }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {"h1"});
  EscState D = A.initialState();
  D = A.transfer(P.command(CommandId(0)), D, Prm);
  D = A.transfer(P.command(CommandId(1)), D, Prm);
  EXPECT_EQ(varVal(A, P, D, "b"), AbsVal::E);
  EscState After = A.transfer(P.command(CommandId(2)), D, Prm);
  EXPECT_EQ(After, D); // storing an escaped pointer changes nothing
}

TEST(Escape, LoadFromLocalReadsFieldSummary) {
  Program P = parse(R"(
    proc main { a = new h1; b = new h2; a.f = b; c = a.f; d = b.f; check(c); }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {"h1", "h2"});
  EscState D = A.initialState();
  for (uint32_t I = 0; I < 5; ++I)
    D = A.transfer(P.command(CommandId(I)), D, Prm);
  EXPECT_EQ(varVal(A, P, D, "c"), AbsVal::L); // read of f summary
  EXPECT_EQ(varVal(A, P, D, "d"), AbsVal::L);
}

TEST(Escape, LoadFromEscapedYieldsEscaped) {
  Program P = parse(R"(
    global g;
    proc main { a = g; b = a.f; check(b); }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {});
  EscState D = A.initialState();
  D = A.transfer(P.command(CommandId(0)), D, Prm);
  D = A.transfer(P.command(CommandId(1)), D, Prm);
  EXPECT_EQ(varVal(A, P, D, "b"), AbsVal::E);
}

TEST(Escape, StoreFieldMixedSummaryCollapses) {
  // f holds L (from a), then storing an escaped value into an L object's
  // field forces esc: {L, E} is not representable.
  Program P = parse(R"(
    global g;
    proc main {
      a = new h1;
      a.f = a;
      e = g;
      a.f = e;
      check(a);
    }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {"h1"});
  EscState D = A.initialState();
  for (uint32_t I = 0; I < 4; ++I)
    D = A.transfer(P.command(CommandId(I)), D, Prm);
  EXPECT_EQ(varVal(A, P, D, "a"), AbsVal::E);
  EXPECT_EQ(fieldVal(A, P, D, "f"), AbsVal::N);
}

TEST(Escape, NullBaseStoreIsIdentity) {
  Program P = parse(R"(
    proc main { a = null; b = new h1; a.f = b; check(b); }
  )");
  EscapeAnalysis A(P);
  EscParam Prm = paramOf(P, {"h1"});
  EscState D = A.initialState();
  D = A.transfer(P.command(CommandId(0)), D, Prm);
  D = A.transfer(P.command(CommandId(1)), D, Prm);
  EscState After = A.transfer(P.command(CommandId(2)), D, Prm);
  EXPECT_EQ(After, D);
}

//===----------------------------------------------------------------------===//
// Requirement (2): wp is exactly the weakest precondition, by property
// testing over random states/abstractions and all commands of a program
// that covers every case of Figure 5.
//===----------------------------------------------------------------------===//

TEST(EscapeWp, SoundAndCompleteOnAllCommandKinds) {
  Program P = parse(R"(
    global g;
    proc main {
      a = new h1;
      b = new h2;
      a = b;
      a = null;
      a = g;
      g = a;
      b = a.f;
      a.f = b;
      a.k = a;
      b.work();
      assume(*);
      check(a);
    }
  )");
  EscapeAnalysis A(P);
  Prng Rng(0xE5CA9E);

  std::vector<AtomId> Atoms;
  for (uint32_t H = 0; H < P.numAllocs(); ++H)
    for (AbsVal O : {AbsVal::L, AbsVal::E})
      Atoms.push_back(EscapeAnalysis::atomSite(AllocId(H), O));
  for (uint32_t V = 0; V < P.numVars(); ++V)
    for (AbsVal O : {AbsVal::N, AbsVal::L, AbsVal::E})
      Atoms.push_back(EscapeAnalysis::atomVar(VarId(V), O));
  for (uint32_t F = 0; F < P.numFields(); ++F)
    for (AbsVal O : {AbsVal::N, AbsVal::L, AbsVal::E})
      Atoms.push_back(EscapeAnalysis::atomField(FieldId(F), O));

  for (int Round = 0; Round < 500; ++Round) {
    EscParam Prm;
    Prm.LSites = BitSet(P.numAllocs());
    for (uint32_t H = 0; H < P.numAllocs(); ++H)
      if (Rng.chance(1, 2))
        Prm.LSites.set(H);
    EscState D = A.initialState();
    for (uint8_t &V : D.Vals)
      V = static_cast<uint8_t>(Rng.nextBelow(3));

    for (uint32_t CI = 0; CI < P.numCommands(); ++CI) {
      const Command &Cmd = P.command(CommandId(CI));
      if (Cmd.Kind == CmdKind::Invoke)
        continue;
      EscState Post = A.transfer(Cmd, D, Prm);
      for (AtomId Atom : Atoms) {
        bool PostHolds = A.evalAtom(Atom, Prm, Post);
        bool WpHolds = A.wpAtom(Cmd, Atom).eval(
            [&](AtomId B) { return A.evalAtom(B, Prm, D); });
        ASSERT_EQ(WpHolds, PostHolds)
            << "cmd " << CI << " (" << cmdKindName(Cmd.Kind) << ") atom "
            << A.atomName(Atom) << " round " << Round;
      }
    }
  }
}

TEST(Escape, ParamCodecAndNames) {
  Program P = parse(Fig6Src);
  EscapeAnalysis A(P);
  EXPECT_EQ(A.numParamBits(), 2u);
  AllocId H1 = P.findAlloc("h1");
  auto [BitL, ValL] =
      A.decodeParamAtom(EscapeAnalysis::atomSite(H1, AbsVal::L));
  EXPECT_EQ(BitL, H1.index());
  EXPECT_TRUE(ValL);
  auto [BitE, ValE] =
      A.decodeParamAtom(EscapeAnalysis::atomSite(H1, AbsVal::E));
  EXPECT_EQ(BitE, H1.index());
  EXPECT_FALSE(ValE);

  std::vector<bool> Bits{true, false};
  EscParam Prm = A.paramFromBits(Bits);
  EXPECT_EQ(A.paramCost(Prm), 1u);
  EXPECT_EQ(A.paramToString(Prm), "[L:h1]");

  EXPECT_EQ(A.atomName(EscapeAnalysis::atomSite(H1, AbsVal::E)), "h1.E");
  EXPECT_EQ(A.atomName(EscapeAnalysis::atomVar(P.findVar("u"), AbsVal::L)),
            "u.L");
  EXPECT_EQ(
      A.atomName(EscapeAnalysis::atomField(P.findField("f"), AbsVal::N)),
      "f.N");
}

TEST(Escape, NotQIsQueriedVarEscapes) {
  Program P = parse(Fig6Src);
  EscapeAnalysis A(P);
  auto NotQ = A.notQ(CheckId(0));
  EXPECT_EQ(NotQ.size(), 1u);
  EscParam Prm = paramOf(P, {});
  EscState D = A.initialState();
  auto Eval = [&](const EscState &S) {
    return [&, S](AtomId At) { return A.evalAtom(At, Prm, S); };
  };
  EXPECT_FALSE(NotQ.eval(Eval(D)));
  D.Vals[A.locOfVar(P.findVar("u"))] = static_cast<uint8_t>(AbsVal::E);
  EXPECT_TRUE(NotQ.eval(Eval(D)));
}

} // namespace
