//===- CachePersistTest.cpp - Persistent cache tier tests ---------------------===//
//
// The warm-restart contract: snapshots round-trip bitwise, damaged or
// stale snapshots are skipped with structured notes (never crash, never a
// wrong verdict), a second service sharing the cache directory comes up
// warm - answering the same queries with bitwise-identical verdicts and
// zero forward fixpoints - and spilled entries rehydrate from disk when a
// later query needs them.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "service/AnalysisService.h"
#include "service/CacheCodecs.h"
#include "support/Config.h"
#include "tracer/CachePersist.h"
#include "tracer/QueryDriver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace optabs;
using namespace optabs::ir;

namespace {

// Same program ServiceTest uses: u is reachable from v through a field,
// so its query needs a non-trivial abstraction (real forward runs, a real
// verdict store - the artifacts persistence must carry across restarts).
const char *EscapeProgram = R"(
proc main {
  u = new h1;
  v = new h2;
  w = new h3;
  v.f = u;
  check(u);
  check(v);
  check(w);
}
)";

// EscapeProgram with one extra store in main: comparable with the
// original (same procs, same check count) but main is dirty, so nothing
// persisted from the original may be served against it.
const char *EscapeProgramModified = R"(
proc main {
  u = new h1;
  v = new h2;
  w = new h3;
  v.f = u;
  w.f = v;
  check(u);
  check(v);
  check(w);
}
)";

void parseInto(const char *Text, Program &P) {
  std::string Err;
  ASSERT_TRUE(parseProgram(Text, P, Err)) << Err;
}

service::Session openOrDie(service::AnalysisService &Svc,
                           const service::SessionSpec &Spec) {
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  EXPECT_TRUE(S.valid()) << Err;
  return S;
}

std::vector<service::QueryResult>
collect(service::AnalysisService &Svc,
        std::vector<std::future<service::QueryResult>> &Futures) {
  Svc.drain();
  std::vector<service::QueryResult> Out;
  for (auto &F : Futures) {
    Out.push_back(F.get());
    EXPECT_EQ(Out.back().Status, service::JobStatus::Done)
        << Out.back().Error;
  }
  return Out;
}

void expectSameVerdict(const tracer::QueryOutcome &Want,
                       const service::QueryResult &Got) {
  EXPECT_EQ(Want.V, Got.V);
  EXPECT_EQ(Want.Iterations, Got.Iterations);
  EXPECT_EQ(Want.CheapestCost, Got.CheapestCost);
  EXPECT_EQ(Want.CheapestParam, Got.CheapestParam);
}

/// A fresh per-test cache directory under /tmp, removed on destruction.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Tag) {
    Path = "/tmp/optabs-persist-" + Tag + "-" +
           std::to_string(static_cast<long>(::getpid()));
    ::mkdir(Path.c_str(), 0700);
  }
  ~TempDir() {
    // Best-effort: unlink every regular file, then the directory.
    std::string Cmd = "rm -rf '" + Path + "'";
    (void)::system(Cmd.c_str());
  }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void dump(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// The one snapshot file a persist of program "p" writes into \p Dir, or
/// "" when none exists yet.
std::string onlySnapshotIn(const std::string &Dir) {
  std::string Found;
  std::string Cmd = "ls '" + Dir + "'";
  FILE *P = ::popen(Cmd.c_str(), "r");
  if (!P)
    return Found;
  char Buf[512];
  while (::fgets(Buf, sizeof(Buf), P)) {
    std::string Name(Buf);
    while (!Name.empty() && (Name.back() == '\n' || Name.back() == '\r'))
      Name.pop_back();
    if (Name.size() > 5 && Name.substr(Name.size() - 5) == ".snap")
      Found = Dir + "/" + Name;
  }
  ::pclose(P);
  return Found;
}

service::AnalysisService::Options warmOptions(const std::string &CacheDir,
                                              unsigned Threads = 1) {
  service::AnalysisService::Options O;
  O.Base.Execution.NumThreads = Threads;
  O.Base.Service.CacheDir = CacheDir;
  return O;
}

/// Registers EscapeProgram, answers all three checks, and returns the
/// results (submission order). With \p EventTracePath, the session's
/// batches (or verdict replays) append event-trace lines there.
std::vector<service::QueryResult>
answerAllChecks(service::AnalysisService &Svc, const char *Text,
                const std::string &EventTracePath = std::string()) {
  EXPECT_TRUE(Svc.registerProgram("p", Text).Ok);
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  Spec.SessionConfig.Observability.EventTracePath = EventTracePath;
  service::Session S = openOrDie(Svc, Spec);
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t C = 0; C < 3; ++C)
    Futures.push_back(S.submit({C, 0, 0}));
  return collect(Svc, Futures);
}

/// The "verdict" event lines of one event-trace file, with the
/// wall-clock "seconds" field zeroed (everything else is deterministic).
std::vector<std::string> verdictTraceLines(const std::string &Path) {
  std::vector<std::string> Out;
  std::ifstream In(Path);
  std::string L;
  while (std::getline(In, L)) {
    if (L.find("\"event\":\"verdict\"") == std::string::npos)
      continue;
    size_t At = L.find("\"seconds\":");
    if (At != std::string::npos) {
      size_t End = At + 10;
      while (End < L.size() && L[End] != ',' && L[End] != '}')
        ++End;
      L = L.substr(0, At + 10) + "0" + L.substr(End);
    }
    Out.push_back(L);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Snapshot framing primitives
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, SnapshotRoundTripPreservesEveryPrimitive) {
  TempDir Dir("roundtrip");
  std::string Path = Dir.Path + "/primitives.snap";

  tracer::SnapshotWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeefu);
  W.u64(0x0123456789abcdefULL);
  W.str("hello snapshot");
  W.str(""); // empty strings must survive too
  W.bytes({0x00, 0xff, 0x7f});
  W.bits({true, false, true, true, false});
  std::string Err;
  ASSERT_TRUE(W.commit(Path, Err)) << Err;

  tracer::SnapshotReader R;
  ASSERT_TRUE(R.open(Path)) << R.error();
  uint8_t B = 0;
  uint32_t U32 = 0;
  uint64_t U64 = 0;
  std::string S1, S2;
  std::vector<uint8_t> Bytes;
  std::vector<bool> Bits;
  EXPECT_TRUE(R.u8(B));
  EXPECT_EQ(B, 0xab);
  EXPECT_TRUE(R.u32(U32));
  EXPECT_EQ(U32, 0xdeadbeefu);
  EXPECT_TRUE(R.u64(U64));
  EXPECT_EQ(U64, 0x0123456789abcdefULL);
  EXPECT_TRUE(R.str(S1));
  EXPECT_EQ(S1, "hello snapshot");
  EXPECT_TRUE(R.str(S2));
  EXPECT_EQ(S2, "");
  EXPECT_TRUE(R.bytes(Bytes));
  EXPECT_EQ(Bytes, (std::vector<uint8_t>{0x00, 0xff, 0x7f}));
  EXPECT_TRUE(R.bits(Bits));
  EXPECT_EQ(Bits, (std::vector<bool>{true, false, true, true, false}));
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.failed());

  // No temp file survives a successful commit.
  EXPECT_EQ(onlySnapshotIn(Dir.Path), Path);
}

TEST(CachePersistTest, ReadingPastTheEndLatchesAStructuredError) {
  TempDir Dir("pastend");
  std::string Path = Dir.Path + "/short.snap";
  tracer::SnapshotWriter W;
  W.u32(7);
  std::string Err;
  ASSERT_TRUE(W.commit(Path, Err)) << Err;

  tracer::SnapshotReader R;
  ASSERT_TRUE(R.open(Path)) << R.error();
  uint32_t V = 0;
  EXPECT_TRUE(R.u32(V));
  uint64_t Missing = 0;
  EXPECT_FALSE(R.u64(Missing)); // only 4 payload bytes exist
  EXPECT_TRUE(R.failed());
  // The error names the file and the offset - the structured note the
  // service surfaces when it skips a damaged snapshot.
  EXPECT_NE(R.error().find("snapshot"), std::string::npos) << R.error();
  EXPECT_NE(R.error().find(Path), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("offset"), std::string::npos) << R.error();
  // The latch holds: a later (otherwise valid) read still fails.
  uint8_t B = 0;
  EXPECT_FALSE(R.u8(B));
}

// The mutation corpus: every truncation of the file and a bit-flip at
// every byte must be rejected at open() - structured error, no crash,
// no partial parse ever visible to the caller.
TEST(CachePersistTest, TruncatedAndBitFlippedSnapshotsAreRejected) {
  TempDir Dir("mutate");
  std::string Good = Dir.Path + "/good.snap";
  tracer::SnapshotWriter W;
  W.str("payload under test");
  W.u64(42);
  W.bits({true, false, true});
  std::string Err;
  ASSERT_TRUE(W.commit(Good, Err)) << Err;

  std::string Bytes = slurp(Good);
  ASSERT_GT(Bytes.size(), 12u); // header alone is 12 bytes
  std::string Mutant = Dir.Path + "/mutant.snap";

  // Every truncation length, including 0 (empty file) and header-only.
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    dump(Mutant, Bytes.substr(0, Len));
    tracer::SnapshotReader R;
    EXPECT_FALSE(R.open(Mutant)) << "truncation at " << Len << " accepted";
    EXPECT_FALSE(R.error().empty());
  }

  // A single flipped bit anywhere - magic, version, payload, or the
  // checksum trailer itself - fails the whole-file validation.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Flipped = Bytes;
    Flipped[I] = static_cast<char>(Flipped[I] ^ 0x40);
    dump(Mutant, Flipped);
    tracer::SnapshotReader R;
    EXPECT_FALSE(R.open(Mutant)) << "bit flip at byte " << I << " accepted";
    EXPECT_NE(R.error().find("snapshot"), std::string::npos) << R.error();
  }

  // Trailing garbage shifts the checksum window off the real trailer.
  dump(Mutant, Bytes + std::string(3, '\0'));
  tracer::SnapshotReader R;
  EXPECT_FALSE(R.open(Mutant));

  // A missing file is a structured failure too, not a crash.
  tracer::SnapshotReader Missing;
  EXPECT_FALSE(Missing.open(Dir.Path + "/does-not-exist.snap"));
  EXPECT_FALSE(Missing.error().empty());
}

TEST(CachePersistTest, CommitIsAtomicOnFailure) {
  // Committing into a directory that does not exist fails cleanly: Err is
  // set and neither the final path nor a temp file appears.
  tracer::SnapshotWriter W;
  W.u32(1);
  std::string Err;
  EXPECT_FALSE(W.commit("/tmp/optabs-no-such-dir-xyzzy/x.snap", Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Warm restart through a shared cache directory
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, WarmRestartIsBitwiseIdenticalWithZeroForwardRuns) {
  for (unsigned Threads : {1u, 8u}) {
    TempDir Dir("warm-t" + std::to_string(Threads));

    // The cold oracle: a standalone driver run over all three queries.
    Program P;
    parseInto(EscapeProgram, P);
    escape::EscapeAnalysis A(P);
    tracer::TracerOptions Opts;
    Opts.NumThreads = Threads;
    tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
    std::vector<tracer::QueryOutcome> Want =
        Driver.run({CheckId(0), CheckId(1), CheckId(2)});

    // First life: answer everything, persist, note the work it took.
    // Both lives share one event-trace path: the options signature that
    // gates verdict replay covers the whole session config, paths
    // included, and the trace file is append-only - the warm life's
    // lines are the suffix.
    uint64_t ColdForwardRuns = 0;
    std::string Trace = Dir.Path + "/trace.jsonl";
    {
      service::AnalysisService Svc(warmOptions(Dir.Path, Threads));
      std::vector<service::QueryResult> Got =
          answerAllChecks(Svc, EscapeProgram, Trace);
      ASSERT_EQ(Got.size(), Want.size());
      for (size_t I = 0; I < Want.size(); ++I)
        expectSameVerdict(Want[I], Got[I]);
      ColdForwardRuns = Svc.stats().ForwardRuns;
      EXPECT_GT(ColdForwardRuns, 0u);

      service::CacheOpResult R = Svc.cacheOp("persist");
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_GT(R.RunsPersisted + R.VerdictsPersisted, 0u);
    }
    ASSERT_FALSE(onlySnapshotIn(Dir.Path).empty());
    std::vector<std::string> ColdLines = verdictTraceLines(Trace);
    ASSERT_EQ(ColdLines.size(), Want.size());

    // Second life: registering the same text auto-warms from the
    // snapshot, so the same queries replay stored verdicts - bitwise
    // identical, with zero forward fixpoints (strictly fewer than cold).
    {
      service::AnalysisService Svc(warmOptions(Dir.Path, Threads));
      std::vector<service::QueryResult> Got =
          answerAllChecks(Svc, EscapeProgram, Trace);
      ASSERT_EQ(Got.size(), Want.size());
      for (size_t I = 0; I < Want.size(); ++I)
        expectSameVerdict(Want[I], Got[I]);

      service::ServiceStats S = Svc.stats();
      EXPECT_EQ(S.ForwardRuns, 0u);
      EXPECT_LT(S.ForwardRuns, ColdForwardRuns);
      EXPECT_EQ(S.VerdictsReplayed, Want.size());
    }

    // The replayed verdicts also re-emit their event-trace verdict
    // lines (round, iterations, cost, param travel in the snapshot), so
    // a trace consumer cannot tell the warm service from the cold one.
    std::vector<std::string> AllLines = verdictTraceLines(Trace);
    ASSERT_EQ(AllLines.size(), 2 * Want.size());
    EXPECT_EQ(std::vector<std::string>(AllLines.begin() + Want.size(),
                                       AllLines.end()),
              ColdLines);
  }
}

TEST(CachePersistTest, ExplicitLoadSkipsEntriesAlreadyResident) {
  TempDir Dir("skip");
  service::AnalysisService Svc(warmOptions(Dir.Path));
  answerAllChecks(Svc, EscapeProgram);
  ASSERT_TRUE(Svc.cacheOp("persist").Ok);

  // Everything on disk is already live in this service, so an explicit
  // re-load loads nothing and counts every record as skipped (live
  // entries win; a load never clobbers newer in-memory state).
  service::CacheOpResult R = Svc.cacheOp("load");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.RunsLoaded, 0u);
  EXPECT_EQ(R.VerdictsLoaded, 0u);
  EXPECT_GT(R.RunsSkipped + R.VerdictsSkipped, 0u);
}

TEST(CachePersistTest, PersistRequiresACacheDir) {
  service::AnalysisService Svc; // no Service.CacheDir configured
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  service::CacheOpResult R = Svc.cacheOp("persist");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
  service::CacheOpResult L = Svc.cacheOp("load");
  EXPECT_FALSE(L.Ok);
  // stats works without any persistence configuration.
  EXPECT_TRUE(Svc.cacheOp("stats").Ok);
  // And an unknown action is a structured refusal.
  EXPECT_FALSE(Svc.cacheOp("defragment").Ok);
}

//===----------------------------------------------------------------------===//
// Stale and corrupt snapshots degrade to a cold start - never served
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, StaleSnapshotEntriesAreSkippedNeverServed) {
  TempDir Dir("stale");
  {
    service::AnalysisService Svc(warmOptions(Dir.Path));
    answerAllChecks(Svc, EscapeProgram);
    ASSERT_TRUE(Svc.cacheOp("persist").Ok);
  }

  // The modified program's oracle (w.f = v makes v escape through w's
  // field the way u already did through v's).
  Program P;
  parseInto(EscapeProgramModified, P);
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  std::vector<tracer::QueryOutcome> Want =
      Driver.run({CheckId(0), CheckId(1), CheckId(2)});

  // Register the *modified* text under the same name: the snapshot's
  // fingerprint diff marks main dirty, so nothing loads - and the
  // verdicts come out right because they are recomputed, not replayed.
  service::AnalysisService Svc(warmOptions(Dir.Path));
  std::vector<service::QueryResult> Got =
      answerAllChecks(Svc, EscapeProgramModified);
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    expectSameVerdict(Want[I], Got[I]);
  EXPECT_GT(Svc.stats().ForwardRuns, 0u); // really recomputed
  EXPECT_EQ(Svc.stats().VerdictsReplayed, 0u);

  // The explicit load reports the mismatch as skips with notes, not as
  // a failure - a stale snapshot is a cold start, not an error.
  service::CacheOpResult R = Svc.cacheOp("load");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.RunsLoaded, 0u);
  EXPECT_EQ(R.VerdictsLoaded, 0u);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(CachePersistTest, CorruptSnapshotIsSkippedWithANote) {
  TempDir Dir("corrupt");
  {
    service::AnalysisService Svc(warmOptions(Dir.Path));
    answerAllChecks(Svc, EscapeProgram);
    ASSERT_TRUE(Svc.cacheOp("persist").Ok);
  }
  std::string Snap = onlySnapshotIn(Dir.Path);
  ASSERT_FALSE(Snap.empty());
  std::string Bytes = slurp(Snap);
  ASSERT_GT(Bytes.size(), 20u);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0x01);
  dump(Snap, Bytes);

  // Register + query: the damaged snapshot degrades the warm start to a
  // cold one. Verdicts are still correct (recomputed), the service never
  // crashes, and the load op names the file in a note.
  Program P;
  parseInto(EscapeProgram, P);
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  std::vector<tracer::QueryOutcome> Want =
      Driver.run({CheckId(0), CheckId(1), CheckId(2)});

  service::AnalysisService Svc(warmOptions(Dir.Path));
  std::vector<service::QueryResult> Got =
      answerAllChecks(Svc, EscapeProgram);
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    expectSameVerdict(Want[I], Got[I]);
  EXPECT_GT(Svc.stats().ForwardRuns, 0u);

  service::CacheOpResult R = Svc.cacheOp("load");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.RunsLoaded + R.VerdictsLoaded, 0u);
  bool Named = false;
  for (const std::string &N : R.Notes)
    Named = Named || N.find("snapshot") != std::string::npos;
  EXPECT_TRUE(Named) << "no structured note names the damaged snapshot";
}

//===----------------------------------------------------------------------===//
// Spill-to-disk and rehydration
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, SpilledRunsRehydrateFromDiskOnDemand) {
  TempDir Dir("spill");
  service::AnalysisService::Options O = warmOptions(Dir.Path);
  service::AnalysisService Svc(O);
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  service::Session S = openOrDie(Svc, Spec);

  // Answer one check; its forward runs populate the cache.
  std::vector<std::future<service::QueryResult>> F1;
  F1.push_back(S.submit({0, 0, 0}));
  collect(Svc, F1);

  // Demote every unpinned run to a spill file.
  service::CacheOpResult Sp = Svc.cacheOp("spill");
  ASSERT_TRUE(Sp.Ok) << Sp.Error;
  EXPECT_GT(Sp.Spilled, 0u);
  EXPECT_GT(Sp.SpillWrites, 0u);

  // A *new* check shares forward runs with the first (the cache keys on
  // the abstraction, not the check), so answering it rehydrates spilled
  // runs instead of recomputing them.
  Program P;
  parseInto(EscapeProgram, P);
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  std::vector<tracer::QueryOutcome> Want = Driver.run({CheckId(1)});
  ASSERT_EQ(Want.size(), 1u);

  std::vector<std::future<service::QueryResult>> F2;
  F2.push_back(S.submit({1, 0, 0}));
  std::vector<service::QueryResult> Got = collect(Svc, F2);
  ASSERT_EQ(Got.size(), 1u);
  expectSameVerdict(Want[0], Got[0]);

  service::CacheOpResult St = Svc.cacheOp("stats");
  ASSERT_TRUE(St.Ok);
  EXPECT_GT(St.SpillLoads, 0u) << "second check never touched the spill tier";
}

TEST(CachePersistTest, MemoryPressureSpillsInsteadOfEvicting) {
  TempDir Dir("pressure");

  // The oracle under the same (absurdly tight) memory budget: the
  // degradation ladder fires either way; with a cache dir armed its
  // first rung must spill, and spilling may never change a verdict.
  Program P;
  parseInto(EscapeProgram, P);
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  Opts.MemoryBudgetBytes = 1;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  std::vector<tracer::QueryOutcome> Want =
      Driver.run({CheckId(0), CheckId(1), CheckId(2)});

  service::AnalysisService Svc(warmOptions(Dir.Path));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  Spec.SessionConfig.Budgets.MemoryBudgetBytes = 1;
  service::Session S = openOrDie(Svc, Spec);
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t C = 0; C < 3; ++C)
    Futures.push_back(S.submit({C, 0, 0}));
  std::vector<service::QueryResult> Got = collect(Svc, Futures);
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    expectSameVerdict(Want[I], Got[I]);

  // The ladder demoted entries through the disk tier, not past it.
  service::CacheOpResult St = Svc.cacheOp("stats");
  ASSERT_TRUE(St.Ok);
  EXPECT_GT(St.SpillWrites, 0u)
      << "memory pressure evicted outright despite an armed spill tier";
}

TEST(CachePersistTest, EvictDropsEverythingWithoutSpilling) {
  TempDir Dir("evict");
  service::AnalysisService Svc(warmOptions(Dir.Path));
  answerAllChecks(Svc, EscapeProgram);

  service::CacheOpResult Before = Svc.cacheOp("stats");
  ASSERT_TRUE(Before.Ok);
  ASSERT_GT(Before.Entries, 0u);

  service::CacheOpResult Ev = Svc.cacheOp("evict");
  ASSERT_TRUE(Ev.Ok) << Ev.Error;
  EXPECT_GT(Ev.Evicted, 0u);
  EXPECT_EQ(Ev.Spilled, 0u);

  service::CacheOpResult After = Svc.cacheOp("stats");
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.Entries, 0u);
  EXPECT_EQ(After.SpillWrites, 0u); // evict never writes spill files
}

//===----------------------------------------------------------------------===//
// Freshness floors survive snapshot loads
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, LoadedVerdictsDoNotUnshadowStaleMigratedRuns) {
  TempDir Dir("floors");

  // Oracles for both versions. The guard below keeps the test potent: if
  // the two versions ever stopped disagreeing, serving one's runs for the
  // other would become unobservable.
  Program P1, P2;
  parseInto(EscapeProgram, P1);
  parseInto(EscapeProgramModified, P2);
  escape::EscapeAnalysis A1(P1), A2(P2);
  tracer::TracerOptions Opts;
  tracer::QueryDriver<escape::EscapeAnalysis> D1(P1, A1, Opts);
  tracer::QueryDriver<escape::EscapeAnalysis> D2(P2, A2, Opts);
  std::vector<tracer::QueryOutcome> Want1 =
      D1.run({CheckId(0), CheckId(1), CheckId(2)});
  std::vector<tracer::QueryOutcome> Want2 =
      D2.run({CheckId(0), CheckId(1), CheckId(2)});
  ASSERT_EQ(Want1.size(), Want2.size());
  bool Differ = false;
  for (size_t I = 0; I < Want1.size(); ++I)
    Differ = Differ || Want1[I].V != Want2[I].V ||
             Want1[I].Iterations != Want2[I].Iterations ||
             Want1[I].CheapestCost != Want2[I].CheapestCost;
  ASSERT_TRUE(Differ) << "the two program versions must disagree somewhere";

  // A peer persists a snapshot of the *modified* version.
  {
    service::AnalysisService Peer(warmOptions(Dir.Path));
    answerAllChecks(Peer, EscapeProgramModified);
    ASSERT_TRUE(Peer.cacheOp("persist").Ok);
  }

  // This service computes forward runs against the original version, then
  // re-registers the modified text: main is dirty, so every check's
  // freshness floor rises and the migrated runs become stale (shadowed in
  // memory, never served). The re-registration auto-warm then loads the
  // peer's snapshot - its verdicts are exact for the live version, but
  // admitting them must not lower any floor.
  service::AnalysisService Svc(warmOptions(Dir.Path));
  answerAllChecks(Svc, EscapeProgram);
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgramModified).Ok);

  // A session under a *different* options signature (the event-trace path
  // is part of it) cannot replay the loaded verdicts, so the driver runs -
  // and the floors must still shadow the stale migrated runs. Served
  // stale, those runs would reproduce the original version's outcomes.
  service::SessionSpec Traced;
  Traced.Program = "p";
  Traced.Client = "escape";
  Traced.SessionConfig.Observability.EventTracePath =
      Dir.Path + "/other-sig.jsonl";
  service::Session S = openOrDie(Svc, Traced);
  std::vector<std::future<service::QueryResult>> F;
  for (uint32_t C = 0; C < 3; ++C)
    F.push_back(S.submit({C, 0, 0}));
  std::vector<service::QueryResult> Got = collect(Svc, F);
  ASSERT_EQ(Got.size(), Want2.size());
  for (size_t I = 0; I < Want2.size(); ++I)
    expectSameVerdict(Want2[I], Got[I]);
  EXPECT_EQ(Svc.stats().VerdictsReplayed, 0u);

  // The loaded verdicts still replay for a matching signature, within the
  // epoch that admitted them - warm restarts depend on it.
  service::SessionSpec Plain;
  Plain.Program = "p";
  Plain.Client = "escape";
  service::Session S2 = openOrDie(Svc, Plain);
  std::vector<std::future<service::QueryResult>> F2;
  for (uint32_t C = 0; C < 3; ++C)
    F2.push_back(S2.submit({C, 0, 0}));
  std::vector<service::QueryResult> Got2 = collect(Svc, F2);
  ASSERT_EQ(Got2.size(), Want2.size());
  for (size_t I = 0; I < Want2.size(); ++I)
    expectSameVerdict(Want2[I], Got2[I]);
  EXPECT_EQ(Svc.stats().VerdictsReplayed, Want2.size());
}

//===----------------------------------------------------------------------===//
// Persist is read-only on live analysis state
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, PersistMergesWithoutMutatingLiveState) {
  TempDir Dir("mergero");
  {
    service::AnalysisService Svc(warmOptions(Dir.Path));
    answerAllChecks(Svc, EscapeProgram);
    ASSERT_TRUE(Svc.cacheOp("persist").Ok);
  }

  // A second service registers (auto-warming from the snapshot), then
  // evicts its caches. A persist now takes the merge path - the old
  // snapshot's runs are absent live - and must union them into the new
  // file WITHOUT resurrecting them in memory.
  service::AnalysisService Svc(warmOptions(Dir.Path));
  ASSERT_TRUE(Svc.registerProgram("p", EscapeProgram).Ok);
  ASSERT_TRUE(Svc.cacheOp("evict").Ok);
  service::CacheOpResult Before = Svc.cacheOp("stats");
  ASSERT_TRUE(Before.Ok);
  ASSERT_EQ(Before.Entries, 0u);

  service::CacheOpResult Pe = Svc.cacheOp("persist");
  ASSERT_TRUE(Pe.Ok) << Pe.Error;
  EXPECT_GT(Pe.RunsPersisted, 0u); // the union carried the on-disk runs
  EXPECT_EQ(Pe.RunsLoaded, 0u);    // ...without loading them live
  service::CacheOpResult After = Svc.cacheOp("stats");
  ASSERT_TRUE(After.Ok);
  EXPECT_EQ(After.Entries, 0u) << "persist refilled the live caches";

  // The union survives: a third service comes up warm off the merged
  // snapshot and answers the whole workload with zero fixpoints.
  Program P;
  parseInto(EscapeProgram, P);
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions Opts;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, Opts);
  std::vector<tracer::QueryOutcome> Want =
      Driver.run({CheckId(0), CheckId(1), CheckId(2)});
  service::AnalysisService Warm(warmOptions(Dir.Path));
  std::vector<service::QueryResult> Got = answerAllChecks(Warm, EscapeProgram);
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    expectSameVerdict(Want[I], Got[I]);
  EXPECT_EQ(Warm.stats().ForwardRuns, 0u);
}

//===----------------------------------------------------------------------===//
// Claimed record counts are clamped against the payload
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, HugeClaimedProcCountIsRejectedStructurally) {
  TempDir Dir("hugecount");
  service::AnalysisService Svc(warmOptions(Dir.Path));
  answerAllChecks(Svc, EscapeProgram);
  ASSERT_TRUE(Svc.cacheOp("persist").Ok);
  std::string Snap = onlySnapshotIn(Dir.Path);
  ASSERT_FALSE(Snap.empty());

  // A checksummed but crafted snapshot claiming ~4 billion procedure
  // records. The claim exceeds the remaining payload, so the load must
  // fail with a structured note - never size a multi-gigabyte loop.
  tracer::SnapshotWriter W;
  W.str("p");
  W.u64(1);
  W.u32(0xffffffffu);
  std::string Err;
  ASSERT_TRUE(W.commit(Snap, Err)) << Err;

  service::CacheOpResult R = Svc.cacheOp("load");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.RunsLoaded + R.VerdictsLoaded, 0u);
  bool Noted = false;
  for (const std::string &N : R.Notes)
    Noted = Noted || N.find("proc count") != std::string::npos;
  EXPECT_TRUE(Noted) << "no structured note names the bogus count";
}

TEST(CachePersistTest, AbsStateValueCountIsClampedToPayload) {
  TempDir Dir("codecclamp");
  std::string Path = Dir.Path + "/state.snap";
  tracer::SnapshotWriter W;
  W.u8(0);            // Top flag
  W.u32(3);           // automaton state
  W.u32(0xffffffffu); // claimed value count, nothing behind it
  std::string Err;
  ASSERT_TRUE(W.commit(Path, Err)) << Err;

  tracer::SnapshotReader R;
  ASSERT_TRUE(R.open(Path)) << R.error();
  typestate::AbsState S;
  EXPECT_FALSE(service::TsStateCodec().load(R, S));
  EXPECT_TRUE(R.failed());
  EXPECT_NE(R.error().find("value count"), std::string::npos) << R.error();
}

//===----------------------------------------------------------------------===//
// The spill budget counts what is already on disk
//===----------------------------------------------------------------------===//

TEST(CachePersistTest, SpillBudgetCountsPreExistingFiles) {
  TempDir Dir("budget");
  {
    // First life: unlimited budget, leave real spill files behind.
    service::AnalysisService Svc(warmOptions(Dir.Path));
    answerAllChecks(Svc, EscapeProgram);
    service::CacheOpResult Sp = Svc.cacheOp("spill");
    ASSERT_TRUE(Sp.Ok) << Sp.Error;
    // At least two files, so every rewrite attempt below still carries a
    // nonzero charge from the *other* pre-existing files.
    ASSERT_GT(Sp.SpillWrites, 1u);
  }

  // Second life: a 1-byte budget. The pre-existing files already exceed
  // it (the directory scan charges them), so the first spill attempt
  // must fall back to plain eviction - restarting never resets the
  // budget.
  service::AnalysisService::Options O = warmOptions(Dir.Path);
  O.Base.Service.SpillBytes = 1;
  service::AnalysisService Svc(O);
  answerAllChecks(Svc, EscapeProgram);
  service::CacheOpResult Sp = Svc.cacheOp("spill");
  ASSERT_TRUE(Sp.Ok) << Sp.Error;
  EXPECT_EQ(Sp.Spilled, 0u) << "restart reset the spill budget";
  EXPECT_GT(Sp.Evicted, 0u);
}

} // namespace
