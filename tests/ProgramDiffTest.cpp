//===- ProgramDiffTest.cpp - Content hashing & version diff tests -------------===//
//
// The incremental re-analysis contract (ir/ProgramDiff.h): procedure
// hashes are stable across re-parses and id-inclusive, cleanliness folds
// in liveness (an untouched procedure dirties when an edit elsewhere
// changes what is live across it), entity-shape mismatches make versions
// incomparable, and per-check footprints over-approximate the procedures
// whose commands may execute before the check.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/ProgramDiff.h"

#include <gtest/gtest.h>

#include <string>

using namespace optabs;
using namespace optabs::ir;

namespace {

Program parse(const std::string &Text) {
  Program P;
  std::string Err;
  EXPECT_TRUE(parseProgram(Text, P, Err)) << Err;
  return P;
}

ProgramFingerprint fp(const std::string &Text) {
  Program P = parse(Text);
  return fingerprintProgram(P);
}

uint32_t procIndex(const ProgramFingerprint &F, const std::string &Name) {
  for (uint32_t I = 0; I < F.Procs.size(); ++I)
    if (F.Procs[I].Name == Name)
      return I;
  ADD_FAILURE() << "no procedure named " << Name;
  return ~0u;
}

// Three procedures; p2 is parsed last, so edits confined to it leave the
// id layout of main and p1 untouched.
const char *BaseText = "proc main {\n"
                       "  call p1;\n"
                       "  call p2;\n"
                       "}\n"
                       "proc p1 {\n"
                       "  a = new h1;\n"
                       "  check(a);\n"
                       "}\n"
                       "proc p2 {\n"
                       "  b = new h2;\n"
                       "  b.f = b;\n"
                       "  check(b);\n"
                       "}\n";

TEST(ProgramDiffTest, FingerprintIsStableAcrossReparses) {
  ProgramFingerprint A = fp(BaseText);
  ProgramFingerprint B = fp(BaseText);
  ASSERT_EQ(A.Procs.size(), B.Procs.size());
  for (size_t I = 0; I < A.Procs.size(); ++I) {
    EXPECT_EQ(A.Procs[I].Name, B.Procs[I].Name);
    EXPECT_EQ(A.Procs[I].ContentHash, B.Procs[I].ContentHash);
    EXPECT_EQ(A.Procs[I].LivenessHash, B.Procs[I].LivenessHash);
  }
  ProgramDiff D = diffPrograms(A, B);
  EXPECT_TRUE(D.Comparable);
  EXPECT_EQ(D.numDirty(), 0u);
}

TEST(ProgramDiffTest, EditConfinedToLastProcDirtiesOnlyThatProc) {
  // Appending a command that reuses existing entities keeps the entity
  // tables and every earlier procedure's ids byte-identical.
  std::string Edited = BaseText;
  size_t At = Edited.find("  check(b);");
  ASSERT_NE(At, std::string::npos);
  Edited.insert(At, "  b.f = b;\n");

  ProgramFingerprint Old = fp(BaseText), New = fp(Edited);
  ProgramDiff D = diffPrograms(Old, New);
  ASSERT_TRUE(D.Comparable);
  EXPECT_EQ(D.numDirty(), 1u);
  ASSERT_EQ(D.DirtyProcNames.size(), 1u);
  EXPECT_EQ(D.DirtyProcNames[0], "p2");
  uint32_t P1 = procIndex(New, "p1");
  EXPECT_EQ(Old.Procs[P1].ContentHash, New.Procs[P1].ContentHash);
  EXPECT_EQ(Old.Procs[P1].LivenessHash, New.Procs[P1].LivenessHash);
}

TEST(ProgramDiffTest, EarlyInsertionDirtiesEveryShiftedProc) {
  // Inserting a command into p1 shifts the raw StmtId/CommandId values of
  // everything parsed after it. The hashes are id-inclusive precisely so
  // this conservatively dirties p2 as well: cached artifacts recorded
  // p2's old command ids.
  std::string Edited = BaseText;
  size_t At = Edited.find("  check(a);");
  ASSERT_NE(At, std::string::npos);
  Edited.insert(At, "  a.f = a;\n");

  ProgramDiff D = diffPrograms(fp(BaseText), fp(Edited));
  ASSERT_TRUE(D.Comparable);
  EXPECT_GE(D.numDirty(), 2u);
  BitSet &Dirty = D.DirtyProcs;
  ProgramFingerprint New = fp(Edited);
  EXPECT_TRUE(Dirty.test(procIndex(New, "p1")));
  EXPECT_TRUE(Dirty.test(procIndex(New, "p2")));
}

TEST(ProgramDiffTest, RenamedProcedureIsDirty) {
  std::string Edited = BaseText;
  size_t At = Edited.find("proc p2 {");
  ASSERT_NE(At, std::string::npos);
  Edited.replace(At, 9, "proc q2 {");
  size_t Call = Edited.find("call p2;");
  ASSERT_NE(Call, std::string::npos);
  Edited.replace(Call, 8, "call q2;");

  ProgramDiff D = diffPrograms(fp(BaseText), fp(Edited));
  ASSERT_TRUE(D.Comparable);
  // main changed (the call target name) and q2 is new under its name.
  ProgramFingerprint New = fp(Edited);
  EXPECT_TRUE(D.DirtyProcs.test(procIndex(New, "main")));
  EXPECT_TRUE(D.DirtyProcs.test(procIndex(New, "q2")));
}

TEST(ProgramDiffTest, LivenessChangeDirtiesATextuallyUntouchedProc) {
  // v1: p2 reads the variable p1 assigned, so `a` is live across the call
  // boundary. v2 severs that use without touching p1's text: p1's content
  // hash is unchanged but its live-out sets (and thus the pruned states
  // the forward engine produces inside it) are not.
  const char *V1 = "proc main {\n"
                   "  call p1;\n"
                   "  call p2;\n"
                   "}\n"
                   "proc p1 {\n"
                   "  a = new h1;\n"
                   "}\n"
                   "proc p2 {\n"
                   "  b = a;\n"
                   "  check(b);\n"
                   "}\n";
  const char *V2 = "proc main {\n"
                   "  call p1;\n"
                   "  call p2;\n"
                   "}\n"
                   "proc p1 {\n"
                   "  a = new h1;\n"
                   "}\n"
                   "proc p2 {\n"
                   "  b = null;\n"
                   "  check(b);\n"
                   "}\n";
  ProgramFingerprint Old = fp(V1), New = fp(V2);
  uint32_t P1 = procIndex(New, "p1");
  EXPECT_EQ(Old.Procs[P1].ContentHash, New.Procs[P1].ContentHash);
  EXPECT_NE(Old.Procs[P1].LivenessHash, New.Procs[P1].LivenessHash);
  ProgramDiff D = diffPrograms(Old, New);
  ASSERT_TRUE(D.Comparable);
  EXPECT_TRUE(D.DirtyProcs.test(P1));
  EXPECT_TRUE(D.DirtyProcs.test(procIndex(New, "p2")));
}

TEST(ProgramDiffTest, EntityShapeMismatchIsIncomparable) {
  // A new allocation site changes the parameter space: nothing can
  // migrate, and the diff reports every procedure of the new program
  // dirty.
  std::string Edited = BaseText;
  size_t At = Edited.find("  check(b);");
  ASSERT_NE(At, std::string::npos);
  Edited.insert(At, "  c = new h3;\n");

  ProgramDiff D = diffPrograms(fp(BaseText), fp(Edited));
  EXPECT_FALSE(D.Comparable);
  EXPECT_EQ(D.numDirty(), fp(Edited).Procs.size());
}

TEST(ProgramDiffTest, FootprintsFollowSequencing) {
  // check 0 sits in p1; p2 only runs after it, so p2 is outside its
  // footprint. check 1 sits in p2 and everything may precede it.
  Program P = parse(BaseText);
  ProgramFingerprint F = fingerprintProgram(P);
  std::vector<BitSet> Foot = checkFootprints(P);
  ASSERT_EQ(Foot.size(), 2u);
  uint32_t Main = procIndex(F, "main"), P1 = procIndex(F, "p1"),
           P2 = procIndex(F, "p2");
  EXPECT_TRUE(Foot[0].test(Main));
  EXPECT_TRUE(Foot[0].test(P1));
  EXPECT_FALSE(Foot[0].test(P2));
  EXPECT_TRUE(Foot[1].test(Main));
  EXPECT_TRUE(Foot[1].test(P1));
  EXPECT_TRUE(Foot[1].test(P2));
}

TEST(ProgramDiffTest, FootprintsCoverChoiceBranchesAndLoops) {
  // Both branches of a choice may precede whatever follows it, and a
  // loop's body may precede a check inside the same loop (the check can
  // run on the second iteration).
  const char *Text = "proc main {\n"
                     "  choice { call pa; } or { call pb; }\n"
                     "  loop {\n"
                     "    call pc;\n"
                     "    check(u);\n"
                     "  }\n"
                     "}\n"
                     "proc pa {\n"
                     "  u = new h1;\n"
                     "}\n"
                     "proc pb {\n"
                     "  u = new h2;\n"
                     "}\n"
                     "proc pc {\n"
                     "  u.f = u;\n"
                     "}\n";
  Program P = parse(Text);
  ProgramFingerprint F = fingerprintProgram(P);
  std::vector<BitSet> Foot = checkFootprints(P);
  ASSERT_EQ(Foot.size(), 1u);
  EXPECT_TRUE(Foot[0].test(procIndex(F, "main")));
  EXPECT_TRUE(Foot[0].test(procIndex(F, "pa")));
  EXPECT_TRUE(Foot[0].test(procIndex(F, "pb")));
  EXPECT_TRUE(Foot[0].test(procIndex(F, "pc")));
}

TEST(ProgramDiffTest, FootprintExcludesProcsOnlyReachableAfterTheCheck) {
  // pd is only ever called after the check: its commands cannot execute
  // before control reaches the check on any path, so an edit to pd leaves
  // the check's cached artifacts exact.
  const char *Text = "proc main {\n"
                     "  call pa;\n"
                     "  check(u);\n"
                     "  call pd;\n"
                     "}\n"
                     "proc pa {\n"
                     "  u = new h1;\n"
                     "}\n"
                     "proc pd {\n"
                     "  u = null;\n"
                     "}\n";
  Program P = parse(Text);
  ProgramFingerprint F = fingerprintProgram(P);
  std::vector<BitSet> Foot = checkFootprints(P);
  ASSERT_EQ(Foot.size(), 1u);
  EXPECT_TRUE(Foot[0].test(procIndex(F, "main")));
  EXPECT_TRUE(Foot[0].test(procIndex(F, "pa")));
  EXPECT_FALSE(Foot[0].test(procIndex(F, "pd")));
}

} // namespace
