//===- NormalizeTest.cpp - Unit tests for semantic DNF normalization ----------===//
//
// The normalization rules must (a) preserve the meaning of formulas over
// all *consistent* assignments (one value per location) and (b) actually
// recover the compact forms the paper's hand-written transfer functions
// produce - that is what makes the k-beam behave as in Figures 1 and 6.
//
//===----------------------------------------------------------------------===//

#include "formula/Normalize.h"

#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs::formula;
using optabs::Prng;

// Atom universe: 4 locations x 3 values; atom id = loc * 3 + value.
constexpr unsigned NumLocs = 4;
constexpr unsigned NumVals = 3;

std::optional<LocationInfo> locOf(AtomId A) {
  LocationInfo Info;
  uint32_t Loc = A / NumVals;
  for (uint32_t V = 0; V < NumVals; ++V)
    Info.Values.push_back(Loc * NumVals + V);
  return Info;
}

CubeRefiner refiner() {
  return [](const Cube &C) { return refineCubeByLocations(C, locOf); };
}

/// Enumerates all consistent assignments (one value per location).
template <typename FnT> void forAllAssignments(FnT Fn) {
  unsigned Total = 1;
  for (unsigned I = 0; I < NumLocs; ++I)
    Total *= NumVals;
  for (unsigned Code = 0; Code < Total; ++Code) {
    unsigned Vals[NumLocs];
    unsigned C = Code;
    for (unsigned I = 0; I < NumLocs; ++I) {
      Vals[I] = C % NumVals;
      C /= NumVals;
    }
    AtomEval Eval = [&Vals](AtomId A) {
      return Vals[A / NumVals] == A % NumVals;
    };
    Fn(Eval);
  }
}

Cube cube(std::initializer_list<Lit> Lits) {
  auto C = Cube::make(Lits);
  EXPECT_TRUE(C.has_value());
  return *C;
}

Lit at(unsigned Loc, unsigned Val) { return Lit::pos(Loc * NumVals + Val); }
Lit nat(unsigned Loc, unsigned Val) { return Lit::neg(Loc * NumVals + Val); }

TEST(RefineCube, TwoPositiveValuesContradict) {
  EXPECT_FALSE(
      refineCubeByLocations(cube({at(0, 0), at(0, 1)}), locOf).has_value());
}

TEST(RefineCube, PositiveDropsNegativesOfSameLocation) {
  auto R = refineCubeByLocations(cube({at(0, 0), nat(0, 1), nat(0, 2)}),
                                 locOf);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->size(), 1u);
  EXPECT_EQ(R->literals()[0], at(0, 0));
}

TEST(RefineCube, ExhaustiveNegativesBecomePositive) {
  auto R = refineCubeByLocations(cube({nat(1, 0), nat(1, 2)}), locOf);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->size(), 1u);
  EXPECT_EQ(R->literals()[0], at(1, 1));
}

TEST(RefineCube, AllNegativesContradict) {
  EXPECT_FALSE(
      refineCubeByLocations(cube({nat(2, 0), nat(2, 1), nat(2, 2)}), locOf)
          .has_value());
}

TEST(RefineCube, IndependentAtomsPassThrough) {
  LocationFn NoLoc = [](AtomId) { return std::nullopt; };
  Cube C = cube({Lit::pos(1), Lit::neg(2)});
  auto R = refineCubeByLocations(C, NoLoc);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, C);
}

TEST(SemanticNormalize, ValueCompleteMerge) {
  // (x /\ loc0=0) \/ (x /\ loc0=1) \/ (x /\ loc0=2)  ==>  x
  Lit X = at(3, 1);
  Dnf D = Dnf::fromCubes({cube({X, at(0, 0)}), cube({X, at(0, 1)}),
                          cube({X, at(0, 2)})});
  semanticNormalize(D, refiner(), locOf);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D.cubes()[0], cube({X}));
}

TEST(SemanticNormalize, ComplementaryMergeWithoutLocations) {
  // (a /\ b) \/ (a /\ !b) ==> a, for independent atoms.
  LocationFn NoLoc = [](AtomId) { return std::nullopt; };
  Dnf D = Dnf::fromCubes({cube({Lit::pos(9), Lit::pos(10)}),
                          cube({Lit::pos(9), Lit::neg(10)})});
  semanticNormalize(D, nullptr, NoLoc);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D.cubes()[0], cube({Lit::pos(9)}));
}

TEST(SemanticNormalize, RecoversFigure6Formula) {
  // The fragmented mechanical wp of u.E over "v.f = u" must merge back to
  //   u.E \/ (v.E /\ u.L) \/ (v.L /\ f.E /\ u.L).
  // Locations: 0 = v, 1 = u, 2 = f; values: 0 = N, 1 = L, 2 = E.
  auto V = [](unsigned Val) { return at(0, Val); };
  auto U = [](unsigned Val) { return at(1, Val); };
  auto F = [](unsigned Val) { return at(2, Val); };
  Dnf D = Dnf::fromCubes({
      cube({V(0), U(2)}),                 // v.N /\ u.E
      cube({V(2), U(1)}),                 // v.E /\ u.L       (esc case)
      cube({V(2), nat(1, 1), U(2)}),      // v.E /\ !u.L /\ u.E
      cube({V(1), F(2), U(2)}),           // v.L /\ f.E /\ u.E
      cube({V(1), F(0), U(2)}),           // v.L /\ f.N /\ u.E
      cube({V(1), F(1), U(2)}),           // v.L /\ f.L /\ u.E
      cube({V(1), F(2), U(1)}),           // v.L /\ f.E /\ u.L (esc case)
  });
  semanticNormalize(D, refiner(), locOf);
  D.sortBySize();
  ASSERT_EQ(D.size(), 3u);
  EXPECT_EQ(D.cubes()[0], cube({U(2)}));
  EXPECT_EQ(D.cubes()[1], cube({V(2), U(1)}));
  EXPECT_EQ(D.cubes()[2], cube({V(1), U(1), F(2)}));
}

/// Property: normalization preserves meaning over consistent assignments.
TEST(SemanticNormalize, PreservesMeaningOnRandomFormulas) {
  Prng Rng(0x5EED);
  for (int Round = 0; Round < 300; ++Round) {
    std::vector<Cube> Cubes;
    unsigned N = 1 + Rng.nextBelow(8);
    for (unsigned I = 0; I < N; ++I) {
      std::vector<Lit> Lits;
      unsigned Len = 1 + Rng.nextBelow(4);
      for (unsigned J = 0; J < Len; ++J) {
        AtomId A = static_cast<AtomId>(Rng.nextBelow(NumLocs * NumVals));
        Lits.push_back(Rng.chance(1, 3) ? Lit::neg(A) : Lit::pos(A));
      }
      if (auto C = Cube::make(std::move(Lits)))
        Cubes.push_back(std::move(*C));
    }
    Dnf Original = Dnf::fromCubes(Cubes);
    Dnf Normalized = Original;
    semanticNormalize(Normalized, refiner(), locOf);
    forAllAssignments([&](const AtomEval &Eval) {
      ASSERT_EQ(Original.eval(Eval), Normalized.eval(Eval))
          << "round " << Round << ": meaning changed";
    });
    // Normalization never grows the formula.
    EXPECT_LE(Normalized.size(), Original.size());
  }
}

TEST(SemanticNormalize, TwoValuedLocations) {
  // Sites have only {L, E}: negatives normalize to the other positive.
  LocationFn TwoVal = [](AtomId A) {
    LocationInfo Info;
    uint32_t Loc = A / 2;
    Info.Values = {Loc * 2, Loc * 2 + 1};
    return std::optional<LocationInfo>(Info);
  };
  CubeRefiner Refine = [&TwoVal](const Cube &C) {
    return refineCubeByLocations(C, TwoVal);
  };
  Dnf D = Dnf::fromCubes({cube({Lit::neg(0)})}); // !h.L ==> h.E
  semanticNormalize(D, Refine, TwoVal);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D.cubes()[0], cube({Lit::pos(1)}));
}

} // namespace
