//===- IncrementalServiceTest.cpp - Incremental re-registration tests ---------===//
//
// The incremental re-analysis contract at the service boundary: verdicts
// after an incremental re-registration are bitwise identical to a cold
// re-registration (the full-invalidate oracle) at every worker count,
// clean checks are answered by migrating cached runs / replaying stored
// verdicts instead of recomputing, queued jobs against a retiring epoch
// survive exactly when their check's footprint is provably untouched, and
// turning the feature off restores the historical evict-everything
// behavior while keeping the stale-pending bugfix.
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <random>
#include <string>
#include <vector>

using namespace optabs;

namespace {

// Three procedures, one check each in p1 and p2; p2 is parsed last, so
// edits confined to it leave main's and p1's id layout untouched and
// check 0's dependence footprint (main, p1) entirely clean.
const char *BaseText = "proc main {\n"
                       "  call p1;\n"
                       "  call p2;\n"
                       "}\n"
                       "proc p1 {\n"
                       "  a = new h1;\n"
                       "  check(a);\n"
                       "}\n"
                       "proc p2 {\n"
                       "  b = new h2;\n"
                       "  b.f = b;\n"
                       "  check(b);\n"
                       "}\n";

/// BaseText with one duplicate command appended inside p2.
std::string editP2(const std::string &Text) {
  std::string Out = Text;
  size_t At = Out.find("  check(b);");
  EXPECT_NE(At, std::string::npos);
  Out.insert(At, "  b.f = b;\n");
  return Out;
}

service::Session openEscape(service::AnalysisService &Svc,
                            const Config &SessionConfig = Config()) {
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  Spec.SessionConfig = SessionConfig;
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  EXPECT_TRUE(S.valid()) << Err;
  return S;
}

/// Submits every check of the registered program and drains; results in
/// check order.
std::vector<service::QueryResult> queryAll(service::AnalysisService &Svc,
                                           service::Session &S,
                                           uint32_t Checks) {
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t C = 0; C < Checks; ++C)
    Futures.push_back(S.submit({C, 0, 0}));
  Svc.drain();
  std::vector<service::QueryResult> Out;
  for (auto &F : Futures)
    Out.push_back(F.get());
  return Out;
}

void expectIdentical(const service::QueryResult &Want,
                     const service::QueryResult &Got,
                     const std::string &Context) {
  EXPECT_EQ(Want.Status, Got.Status) << Context << ": " << Got.Error;
  EXPECT_EQ(Want.V, Got.V) << Context;
  EXPECT_EQ(Want.Iterations, Got.Iterations) << Context;
  EXPECT_EQ(Want.CheapestCost, Got.CheapestCost) << Context;
  EXPECT_EQ(Want.CheapestParam, Got.CheapestParam) << Context;
  EXPECT_EQ(Want.ExhaustedResource, Got.ExhaustedResource) << Context;
}

/// The "verdict" event-trace lines of \p Path, starting at line index
/// \p From. Sorted by the caller when emission order may differ.
std::vector<std::string> verdictLines(const std::string &Path,
                                      size_t From = 0) {
  std::ifstream In(Path);
  std::vector<std::string> Out;
  std::string Line;
  size_t Index = 0;
  while (std::getline(In, Line)) {
    if (Index++ < From)
      continue;
    if (Line.find("\"event\":\"verdict\"") != std::string::npos)
      Out.push_back(Line);
  }
  return Out;
}

size_t lineCount(const std::string &Path) {
  std::ifstream In(Path);
  std::string Line;
  size_t N = 0;
  while (std::getline(In, Line))
    ++N;
  return N;
}

TEST(IncrementalServiceTest, ReRegisterReportsTheDiffAndMigrates) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  service::AnalysisService Svc(std::move(Opts));
  service::RegisterResult R1 = Svc.registerProgram("p", BaseText);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  EXPECT_FALSE(R1.ReRegistered);
  EXPECT_FALSE(R1.Incremental);

  service::Session S = openEscape(Svc);
  std::vector<service::QueryResult> Cold = queryAll(Svc, S, 2);
  uint64_t ColdRuns = Svc.stats().ForwardRuns;
  ASSERT_GT(ColdRuns, 0u);

  service::RegisterResult R2 = Svc.registerProgram("p", editP2(BaseText));
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_TRUE(R2.ReRegistered);
  EXPECT_TRUE(R2.Incremental);
  EXPECT_GT(R2.Epoch, R1.Epoch);
  ASSERT_EQ(R2.DirtyProcs.size(), 1u);
  EXPECT_EQ(R2.DirtyProcs[0], "p2");
  EXPECT_EQ(R2.DirtyChecks, 1u); // only check 1's footprint touches p2

  std::vector<service::QueryResult> Warm = queryAll(Svc, S, 2);
  // Check 0's footprint is clean: its stored verdict replays unchanged.
  expectIdentical(Cold[0], Warm[0], "clean check after incremental edit");
  EXPECT_EQ(Warm[1].Status, service::JobStatus::Done) << Warm[1].Error;

  service::ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.ProceduresDirty, 1u);
  EXPECT_GT(Stats.EntriesMigrated, 0u);
  EXPECT_GE(Stats.VerdictsReplayed, 1u);
  // Only the dirty check's fixpoints re-ran: strictly fewer new forward
  // runs than the cold pass needed for both checks.
  EXPECT_LT(Svc.stats().ForwardRuns - ColdRuns, ColdRuns);
}

TEST(IncrementalServiceTest, WarmVerdictsMatchColdOracleBitwise) {
  const std::string Edited = editP2(BaseText);
  for (unsigned Threads : {1u, 8u}) {
    // Oracle: a fresh service sees only the edited program (a cold
    // re-registration is indistinguishable from a cold registration).
    service::AnalysisService::Options OracleOpts;
    OracleOpts.AutoDispatch = false;
    OracleOpts.Base.Execution.NumThreads = Threads;
    service::AnalysisService Oracle(std::move(OracleOpts));
    ASSERT_TRUE(Oracle.registerProgram("p", Edited).Ok);
    service::Session OracleS = openEscape(Oracle);
    std::vector<service::QueryResult> Want = queryAll(Oracle, OracleS, 2);

    service::AnalysisService::Options Opts;
    Opts.AutoDispatch = false;
    Opts.Base.Execution.NumThreads = Threads;
    service::AnalysisService Svc(std::move(Opts));
    ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
    service::Session S = openEscape(Svc);
    queryAll(Svc, S, 2); // warm the caches against version 1
    ASSERT_TRUE(Svc.registerProgram("p", Edited).Ok);
    std::vector<service::QueryResult> Got = queryAll(Svc, S, 2);

    ASSERT_EQ(Want.size(), Got.size());
    for (size_t I = 0; I < Want.size(); ++I)
      expectIdentical(Want[I], Got[I],
                      "check " + std::to_string(I) + " at " +
                          std::to_string(Threads) + " threads");
  }
}

TEST(IncrementalServiceTest, QueuedJobsSurviveExactlyWhenFootprintClean) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
  service::Session S = openEscape(Svc);
  std::vector<service::QueryResult> Cold = queryAll(Svc, S, 2);

  // Queue both checks, then re-register before they are batched. The
  // check-0 job's footprint is untouched by the edit, so it survives the
  // epoch bump; the check-1 job would silently run against different IR
  // than it was submitted for, so it fails structurally.
  std::future<service::QueryResult> Clean = S.submit({0, 0, 0});
  std::future<service::QueryResult> Stale = S.submit({1, 0, 0});
  ASSERT_TRUE(Svc.registerProgram("p", editP2(BaseText)).Ok);
  Svc.drain();

  service::QueryResult CleanR = Clean.get();
  expectIdentical(Cold[0], CleanR, "queued job with clean footprint");
  service::QueryResult StaleR = Stale.get();
  EXPECT_EQ(StaleR.Status, service::JobStatus::Failed);
  EXPECT_NE(StaleR.Error.find("stale epoch"), std::string::npos)
      << StaleR.Error;
  EXPECT_GE(Svc.stats().JobsFailed, 1u);
}

TEST(IncrementalServiceTest, LegacyModeEvictsEverythingButKeepsTheSweep) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Service.IncrementalReRegister = false;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
  service::Session S = openEscape(Svc);
  queryAll(Svc, S, 2);

  // Even a footprint-clean queued job fails without the diff: with the
  // feature off there is no evidence the check is unaffected, and
  // re-running it against different IR than it was submitted for was the
  // original bug.
  std::future<service::QueryResult> Queued = S.submit({0, 0, 0});
  service::RegisterResult R = Svc.registerProgram("p", editP2(BaseText));
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.ReRegistered);
  EXPECT_FALSE(R.Incremental);
  EXPECT_TRUE(R.DirtyProcs.empty());
  Svc.drain();
  service::QueryResult QueuedR = Queued.get();
  EXPECT_EQ(QueuedR.Status, service::JobStatus::Failed);
  EXPECT_NE(QueuedR.Error.find("stale epoch"), std::string::npos)
      << QueuedR.Error;

  queryAll(Svc, S, 2); // recomputes everything against the new epoch
  service::ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.EntriesMigrated, 0u);
  EXPECT_EQ(Stats.VerdictsReplayed, 0u);
  EXPECT_GT(Stats.StaleEntriesInvalidated, 0u);
}

TEST(IncrementalServiceTest, CleanRepeatReplaysWithoutNewFixpoints) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
  service::Session S = openEscape(Svc);
  std::vector<service::QueryResult> Cold = queryAll(Svc, S, 2);
  ASSERT_TRUE(Svc.registerProgram("p", editP2(BaseText)).Ok);

  uint64_t RunsBefore = Svc.stats().ForwardRuns;
  uint64_t ReplaysBefore = Svc.stats().VerdictsReplayed;
  std::vector<std::future<service::QueryResult>> Futures;
  Futures.push_back(S.submit({0, 0, 0}));
  Svc.drain();
  service::QueryResult R = Futures[0].get();
  expectIdentical(Cold[0], R, "replayed clean check");
  EXPECT_EQ(Svc.stats().ForwardRuns, RunsBefore);
  EXPECT_EQ(Svc.stats().VerdictsReplayed, ReplaysBefore + 1);
}

// With tracing on, explain() attributes a replayed-after-re-register job
// to the stored verdict's data epoch and names the clean dependence
// footprint that made the replay legal - the procedures the edit did NOT
// touch, by name.
TEST(IncrementalServiceTest, ExplainNamesCleanFootprintOnReplay) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Observability.ServiceTrace = true;
  service::AnalysisService Svc(std::move(Opts));
  ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
  service::Session S = openEscape(Svc);
  std::vector<service::QueryResult> Cold = queryAll(Svc, S, 2);
  ASSERT_TRUE(Svc.registerProgram("p", editP2(BaseText)).Ok);

  uint64_t JobId = 0;
  std::vector<std::future<service::QueryResult>> Futures;
  Futures.push_back(S.submit({0, 0, 0}, &JobId));
  Svc.drain();
  expectIdentical(Cold[0], Futures[0].get(), "replayed clean check");

  service::JobTimeline T = Svc.explain(JobId);
  ASSERT_TRUE(T.Found);
  EXPECT_EQ(T.Status, "done");
  EXPECT_EQ(T.Verdict, "proven");
  EXPECT_TRUE(T.Replayed);
  EXPECT_EQ(T.ReplayDataEpoch, 1u); // computed at epoch 1, served at 2
  // Check 0 depends on main and p1; the edit dirtied only p2.
  EXPECT_NE(T.CleanFootprint.find("main"), std::string::npos)
      << T.CleanFootprint;
  EXPECT_NE(T.CleanFootprint.find("p1"), std::string::npos)
      << T.CleanFootprint;
  EXPECT_EQ(T.CleanFootprint.find("p2"), std::string::npos)
      << T.CleanFootprint;

  // The recorded lifecycle carries the same attribution: a "replayed"
  // event for this job whose note is the footprint, and no driver "run"
  // event in that batch.
  bool SawReplayed = false;
  for (const support::TraceEvent &E : Svc.drainTrace())
    if (std::string(E.Kind) == "replayed" && E.Job == JobId) {
      SawReplayed = true;
      EXPECT_EQ(E.Note, T.CleanFootprint);
      EXPECT_EQ(E.U0, T.ReplayDataEpoch);
    }
  EXPECT_TRUE(SawReplayed);
}

// The satellite property test: a randomized edit script, replayed against
// a cold full-invalidate oracle at every step. Verdict fields and the
// "verdict" event-trace lines must be identical (the trace lines as a
// multiset: batch composition may reorder emission, never content).
TEST(IncrementalServiceTest, RandomizedEditScriptMatchesColdOracle) {
  constexpr unsigned Steps = 6;
  std::mt19937 Rng(0xC0FFEE);

  for (unsigned Threads : {1u, 8u}) {
    const std::string TracePath = "incremental_trace_" +
                                  std::to_string(Threads) + ".jsonl";
    const std::string OraclePath = "incremental_oracle_" +
                                   std::to_string(Threads) + ".jsonl";
    std::ofstream(TracePath, std::ios::trunc).close();

    Config SessionConfig;
    SessionConfig.Observability.EventTracePath = TracePath;

    service::AnalysisService::Options Opts;
    Opts.AutoDispatch = false;
    Opts.Base.Execution.NumThreads = Threads;
    Opts.Base.Observability.EventTracePath = TracePath;
    service::AnalysisService Svc(std::move(Opts));
    ASSERT_TRUE(Svc.registerProgram("p", BaseText).Ok);
    service::Session S = openEscape(Svc, SessionConfig);
    queryAll(Svc, S, 2);

    std::string Text = BaseText;
    for (unsigned Step = 0; Step < Steps; ++Step) {
      // Edits exercise every diff class: confined to the last procedure
      // (one dirty proc), early in the file (id shift dirties the rest),
      // entity-shape changes (incomparable), and the identity edit.
      switch (Rng() % 4) {
      case 0:
        Text = editP2(Text);
        break;
      case 1: {
        size_t At = Text.find("  check(a);");
        ASSERT_NE(At, std::string::npos);
        Text.insert(At, "  a.f = a;\n");
        break;
      }
      case 2: {
        size_t At = Text.find("  check(b);");
        ASSERT_NE(At, std::string::npos);
        Text.insert(At, "  c = b;\n"); // new var the first time only
        break;
      }
      case 3:
        break; // re-register the identical text: zero dirty procs
      }

      size_t TraceMark = lineCount(TracePath);
      ASSERT_TRUE(Svc.registerProgram("p", Text).Ok) << "step " << Step;
      std::vector<service::QueryResult> Got = queryAll(Svc, S, 2);

      std::ofstream(OraclePath, std::ios::trunc).close();
      Config OracleSession;
      OracleSession.Observability.EventTracePath = OraclePath;
      service::AnalysisService::Options OracleOpts;
      OracleOpts.AutoDispatch = false;
      OracleOpts.Base.Execution.NumThreads = Threads;
      OracleOpts.Base.Observability.EventTracePath = OraclePath;
      service::AnalysisService Oracle(std::move(OracleOpts));
      ASSERT_TRUE(Oracle.registerProgram("p", Text).Ok);
      service::Session OracleS = openEscape(Oracle, OracleSession);
      std::vector<service::QueryResult> Want = queryAll(Oracle, OracleS, 2);

      ASSERT_EQ(Want.size(), Got.size());
      for (size_t I = 0; I < Want.size(); ++I)
        expectIdentical(Want[I], Got[I],
                        "step " + std::to_string(Step) + " check " +
                            std::to_string(I) + " at " +
                            std::to_string(Threads) + " threads");

      std::vector<std::string> GotLines = verdictLines(TracePath, TraceMark);
      std::vector<std::string> WantLines = verdictLines(OraclePath);
      std::sort(GotLines.begin(), GotLines.end());
      std::sort(WantLines.begin(), WantLines.end());
      EXPECT_EQ(WantLines, GotLines)
          << "verdict trace diverged at step " << Step << ", "
          << Threads << " threads";
    }
    std::remove(TracePath.c_str());
    std::remove(OraclePath.c_str());
  }
}

} // namespace
