//===- BackwardTest.cpp - Theorem 3 property tests for the meta-analysis ------===//
//
// Theorem 3 (Soundness) of the paper:
//   1. (p, F_p[t](d)) in gamma(f)  ==>  (p, d) in gamma(B[t](p, d, f))
//      - the current pair is never lost (progress);
//   2. every (p0, d0) in gamma(B[t](p, d, f)) satisfies
//      (p0, F_p0[t](d0)) in gamma(f)
//      - everything the formula captures really fails the same way.
// These are validated here on traces extracted from randomly generated
// programs, for both client analyses and several beam widths, by sampling
// (p0, d0) pairs and replaying the trace under them.
//
//===----------------------------------------------------------------------===//

#include "meta/Backward.h"

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "support/Prng.h"
#include "typestate/Typestate.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;

Program parse(const std::string &Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// Shared driver: run forward under the cheapest abstraction, take every
/// failing state at every check, extract traces, run the meta-analysis,
/// then check both halves of Theorem 3 by sampling.
template <typename Analysis, typename RandomParam, typename RandomState>
void checkTheorem3(const Program &P, const Analysis &A, unsigned K,
                   RandomParam RandParam, RandomState RandState,
                   Prng &Rng) {
  using Fwd = dataflow::ForwardAnalysis<Analysis>;
  typename Analysis::Param P0 = A.paramFromBits({});
  Fwd Forward(P, A, P0);
  Forward.run(A.initialState());

  meta::BackwardConfig Config;
  Config.K = K;
  meta::BackwardMetaAnalysis<Analysis> Bwd(P, A, Config);

  for (uint32_t CI = 0; CI < P.numChecks(); ++CI) {
    CheckId Check(CI);
    formula::Dnf NotQ = A.notQ(Check);
    for (const auto &D : Forward.statesAtCheck(Check)) {
      bool Fails = NotQ.eval(
          [&](formula::AtomId At) { return A.evalAtom(At, P0, D); });
      if (!Fails)
        continue;
      auto T = Forward.extractTrace(Check, D);
      ASSERT_TRUE(T.has_value());
      auto States = Forward.replay(*T, A.initialState());
      auto F = Bwd.run(*T, P0, States, NotQ);
      ASSERT_TRUE(F.has_value());

      // Part 1: the run's own (p, d_I) is captured.
      EXPECT_TRUE(F->eval([&](formula::AtomId At) {
        return A.evalAtom(At, P0, States.front());
      }));

      // Part 2: sampled members of gamma(F) really fail.
      for (int Sample = 0; Sample < 30; ++Sample) {
        typename Analysis::Param Prm = RandParam(Rng);
        typename Analysis::State D0 = RandState(Rng);
        bool Captured = F->eval([&](formula::AtomId At) {
          return A.evalAtom(At, Prm, D0);
        });
        if (!Captured)
          continue;
        typename Analysis::State Cur = D0;
        for (CommandId Cmd : *T)
          Cur = A.transfer(P.command(Cmd), Cur, Prm);
        EXPECT_TRUE(NotQ.eval([&](formula::AtomId At) {
          return A.evalAtom(At, Prm, Cur);
        })) << "a captured pair did not fail (check " << CI << ", k=" << K
            << ")";
      }
    }
  }
}

std::string randomEscapeProgram(Prng &Rng) {
  const char *Vars[] = {"a", "b", "c"};
  const char *Sites[] = {"h1", "h2", "h3"};
  const char *Fields[] = {"f", "k"};
  std::string Src = "global g;\nproc main {\n";
  Src += "  a = new h1;\n  b = new h2;\n  c = null;\n";
  unsigned Len = 3 + Rng.nextBelow(8);
  for (unsigned I = 0; I < Len; ++I) {
    std::string V = Vars[Rng.nextBelow(3)];
    std::string W = Vars[Rng.nextBelow(3)];
    switch (Rng.nextBelow(8)) {
    case 0:
      Src += "  " + V + " = new " + Sites[Rng.nextBelow(3)] + ";\n";
      break;
    case 1:
      Src += "  " + V + " = " + W + ";\n";
      break;
    case 2:
      Src += "  g = " + V + ";\n";
      break;
    case 3:
      Src += "  " + V + " = g;\n";
      break;
    case 4:
      Src += "  " + V + " = " + W + "." + Fields[Rng.nextBelow(2)] + ";\n";
      break;
    case 5:
      Src += "  " + V + "." + Fields[Rng.nextBelow(2)] + " = " + W + ";\n";
      break;
    case 6:
      Src += "  choice { " + V + " = " + W + "; } or { }\n";
      break;
    default:
      Src += "  " + V + " = null;\n";
      break;
    }
  }
  Src += "  check(a);\n  check(b);\n}\n";
  return Src;
}

TEST(Theorem3, HoldsForEscapeOnRandomPrograms) {
  Prng Rng(0x7EAC);
  for (int Round = 0; Round < 40; ++Round) {
    Program P = parse(randomEscapeProgram(Rng));
    escape::EscapeAnalysis A(P);
    auto RandParam = [&P, &A](Prng &R) {
      std::vector<bool> Bits(P.numAllocs());
      for (size_t I = 0; I < Bits.size(); ++I)
        Bits[I] = R.chance(1, 2);
      return A.paramFromBits(Bits);
    };
    auto RandState = [&P, &A](Prng &R) {
      escape::EscState D = A.initialState();
      for (uint8_t &V : D.Vals)
        V = static_cast<uint8_t>(R.nextBelow(3));
      return D;
    };
    for (unsigned K : {1u, 3u, 0u})
      checkTheorem3(P, A, K, RandParam, RandState, Rng);
  }
}

TEST(Theorem3, HoldsForTypestateOnRandomPrograms) {
  Prng Rng(0x7EAD);
  const char *Vars[] = {"a", "b", "c"};
  for (int Round = 0; Round < 40; ++Round) {
    std::string Src = "proc main {\n  a = new h1;\n";
    unsigned Len = 2 + Rng.nextBelow(8);
    for (unsigned I = 0; I < Len; ++I) {
      std::string V = Vars[Rng.nextBelow(3)];
      std::string W = Vars[Rng.nextBelow(3)];
      switch (Rng.nextBelow(5)) {
      case 0:
        Src += "  " + V + " = " + W + ";\n";
        break;
      case 1:
        Src += "  " + V + ".work();\n";
        break;
      case 2:
        Src += "  " + V + " = new h1;\n";
        break;
      case 3:
        Src += "  choice { " + V + " = " + W + "; } or { }\n";
        break;
      default:
        Src += "  " + V + " = null;\n";
        break;
      }
    }
    Src += "  check(a, init);\n}\n";
    Program P = parse(Src);
    typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();
    pointer::PointsToResult Pt = pointer::runPointsTo(P);
    typestate::TypestateAnalysis A(P, Spec, P.findAlloc("h1"), Pt);
    auto RandParam = [&P, &A](Prng &R) {
      std::vector<bool> Bits(P.numVars());
      for (size_t I = 0; I < Bits.size(); ++I)
        Bits[I] = R.chance(1, 2);
      return A.paramFromBits(Bits);
    };
    auto RandState = [&P](Prng &R) {
      typestate::AbsState D;
      if (R.chance(1, 6)) {
        D.Top = true;
        return D;
      }
      D.Ts = 1;
      for (uint32_t V = 0; V < P.numVars(); ++V)
        if (R.chance(1, 3))
          D.Vs.push_back(V);
      return D;
    };
    for (unsigned K : {1u, 3u, 0u})
      checkTheorem3(P, A, K, RandParam, RandState, Rng);
  }
}

TEST(Backward, StatsArePopulated) {
  Program P = parse(R"(
    global g;
    proc main { a = new h1; g = a; check(a); }
  )");
  escape::EscapeAnalysis A(P);
  escape::EscParam Prm = A.paramFromBits({});
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> Fwd(P, A, Prm);
  Fwd.run(A.initialState());
  auto AtCheck = Fwd.statesAtCheck(CheckId(0));
  ASSERT_FALSE(AtCheck.empty());
  auto T = Fwd.extractTrace(CheckId(0), AtCheck[0]);
  ASSERT_TRUE(T.has_value());
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(P, A);
  auto States = Fwd.replay(*T, A.initialState());
  auto F = Bwd.run(*T, Prm, States, A.notQ(CheckId(0)));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(Bwd.stats().Steps, T->size());
  EXPECT_GE(Bwd.stats().MaxCubes, 1u);
}

TEST(Backward, TimeoutReturnsNullopt) {
  Program P = parse(R"(
    global g;
    proc main { a = new h1; g = a; check(a); }
  )");
  escape::EscapeAnalysis A(P);
  escape::EscParam Prm = A.paramFromBits({});
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> Fwd(P, A, Prm);
  Fwd.run(A.initialState());
  auto AtCheck = Fwd.statesAtCheck(CheckId(0));
  auto T = Fwd.extractTrace(CheckId(0), AtCheck[0]);
  meta::BackwardConfig Config;
  Config.TimeoutSeconds = 1e-12; // expires immediately
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(P, A, Config);
  auto States = Fwd.replay(*T, A.initialState());
  EXPECT_FALSE(Bwd.run(*T, Prm, States, A.notQ(CheckId(0))).has_value());
}

} // namespace
