//===- MetaTest.cpp - Unit tests for the backward meta-analysis driver --------===//

#include "meta/Backward.h"

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using escape::EscapeAnalysis;
using escape::EscParam;
using escape::EscState;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

struct Fixture {
  Program P;
  std::unique_ptr<EscapeAnalysis> A;
  std::unique_ptr<dataflow::ForwardAnalysis<EscapeAnalysis>> Fwd;
  EscParam Prm;
  ir::Trace T;
  std::vector<EscState> States;
  formula::Dnf NotQ;

  explicit Fixture(const char *Src) {
    P = parse(Src);
    A = std::make_unique<EscapeAnalysis>(P);
    Prm = A->paramFromBits({});
    Fwd = std::make_unique<dataflow::ForwardAnalysis<EscapeAnalysis>>(
        P, *A, Prm);
    Fwd->run(A->initialState());
    NotQ = A->notQ(CheckId(0));
    for (const auto &D : Fwd->statesAtCheck(CheckId(0))) {
      if (NotQ.eval([&](formula::AtomId At) {
            return A->evalAtom(At, Prm, D);
          })) {
        auto Trace = Fwd->extractTrace(CheckId(0), D);
        EXPECT_TRUE(Trace.has_value());
        T = *Trace;
        States = Fwd->replay(T, A->initialState());
        break;
      }
    }
    EXPECT_FALSE(T.empty());
  }
};

const char *Fig6 = R"(
  proc main { u = new h1; v = new h2; v.f = u; check(u); }
)";

TEST(Meta, ProjectToParamsKeepsOnlyParamAtoms) {
  Fixture F(Fig6);
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A);
  auto Formula = Bwd.run(F.T, F.Prm, F.States, F.NotQ);
  ASSERT_TRUE(Formula.has_value());
  formula::Dnf Proj =
      Bwd.projectToParams(*Formula, F.Prm, F.A->initialState());
  for (const formula::Cube &C : Proj.cubes())
    for (formula::Lit L : C.literals())
      EXPECT_TRUE(F.A->isParamAtom(L.atom()));
  // The current abstraction (all-E) must be in the projected set.
  EXPECT_TRUE(Proj.eval([&](formula::AtomId At) {
    return F.A->evalAtom(At, F.Prm, F.A->initialState());
  }));
}

TEST(Meta, ProjectionDropsCubesInfeasibleAtInitialState) {
  // A cube demanding u.E at d_I (all-N) is infeasible and must vanish.
  Fixture F(Fig6);
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A);
  VarId U = F.P.findVar("u");
  formula::Dnf D = formula::Dnf::fromCubes(
      {*formula::Cube::make(
           {formula::Lit::pos(EscapeAnalysis::atomVar(U, escape::AbsVal::E)),
            formula::Lit::pos(EscapeAnalysis::atomSite(
                F.P.findAlloc("h1"), escape::AbsVal::L))}),
       *formula::Cube::make({formula::Lit::pos(EscapeAnalysis::atomSite(
           F.P.findAlloc("h2"), escape::AbsVal::E))})});
  formula::Dnf Proj = Bwd.projectToParams(D, F.Prm, F.A->initialState());
  ASSERT_EQ(Proj.size(), 1u);
  EXPECT_EQ(Proj.cubes()[0].size(), 1u);
}

TEST(Meta, IdentitySkipDoesNotChangeResults) {
  Fixture F(Fig6);
  meta::BackwardConfig WithSkip, WithoutSkip;
  WithSkip.SkipIdentitySteps = true;
  WithoutSkip.SkipIdentitySteps = false;
  meta::BackwardMetaAnalysis<EscapeAnalysis> B1(F.P, *F.A, WithSkip);
  meta::BackwardMetaAnalysis<EscapeAnalysis> B2(F.P, *F.A, WithoutSkip);
  auto F1 = B1.run(F.T, F.Prm, F.States, F.NotQ);
  auto F2 = B2.run(F.T, F.Prm, F.States, F.NotQ);
  ASSERT_TRUE(F1.has_value() && F2.has_value());
  auto Name = [&](formula::AtomId A) { return F.A->atomName(A); };
  EXPECT_EQ(F1->toString(Name), F2->toString(Name));
}

TEST(Meta, ObserverSeesEveryStep) {
  Fixture F(Fig6);
  meta::BackwardConfig Config;
  std::vector<size_t> Steps;
  Config.StepObserver = [&](size_t I, const Command &,
                            const formula::Dnf &) { Steps.push_back(I); };
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A, Config);
  auto Formula = Bwd.run(F.T, F.Prm, F.States, F.NotQ);
  ASSERT_TRUE(Formula.has_value());
  ASSERT_EQ(Steps.size(), F.T.size());
  // Steps are observed back to front.
  for (size_t I = 0; I < Steps.size(); ++I)
    EXPECT_EQ(Steps[I], F.T.size() - 1 - I);
}

TEST(Meta, KZeroTracksMoreCubesThanKOne) {
  Fixture F(Fig6);
  meta::BackwardConfig K1, K0;
  K1.K = 1;
  K0.K = 0;
  meta::BackwardMetaAnalysis<EscapeAnalysis> B1(F.P, *F.A, K1);
  meta::BackwardMetaAnalysis<EscapeAnalysis> B0(F.P, *F.A, K0);
  ASSERT_TRUE(B1.run(F.T, F.Prm, F.States, F.NotQ).has_value());
  ASSERT_TRUE(B0.run(F.T, F.Prm, F.States, F.NotQ).has_value());
  EXPECT_LE(B1.stats().MaxCubes, 1u);
  EXPECT_GT(B0.stats().MaxCubes, 1u);
}

TEST(Meta, LongIdentityTailIsCheap) {
  // A long stretch of commands unrelated to the query: every backward step
  // over them is the identity, and the result still projects to h1.E.
  std::string Src = "global g;\nproc main {\n  u = new h1;\n";
  for (int I = 0; I < 200; ++I)
    Src += "  n" + std::to_string(I) + " = new hx" + std::to_string(I % 7) +
           ";\n";
  Src += "  check(u);\n}\n";
  Fixture F(Src.c_str());
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A);
  auto Formula = Bwd.run(F.T, F.Prm, F.States, F.NotQ);
  ASSERT_TRUE(Formula.has_value());
  formula::Dnf Proj =
      Bwd.projectToParams(*Formula, F.Prm, F.A->initialState());
  auto Name = [&](formula::AtomId A) { return F.A->atomName(A); };
  EXPECT_EQ(Proj.toString(Name), "h1.E");
  EXPECT_EQ(Bwd.stats().Steps, F.T.size());
}

TEST(Meta, FormulaToStringUsesClientAtomNames) {
  Fixture F(Fig6);
  meta::BackwardMetaAnalysis<EscapeAnalysis> Bwd(F.P, *F.A);
  formula::Dnf D = formula::Dnf::singleLit(formula::Lit::pos(
      EscapeAnalysis::atomSite(F.P.findAlloc("h1"), escape::AbsVal::L)));
  EXPECT_EQ(Bwd.formulaToString(D), "h1.L");
}

} // namespace
