//===- ShardRouterTest.cpp - Supervisor failure-path tests ----------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
//
// Every failure path of service/ShardRouter.h driven by scripted fakes:
// worker death during register-program, during a re-register migration,
// with zero pending jobs; hung-shard request timeouts with bounded
// retries; restart-exhaustion failing jobs loudly; cancelled jobs staying
// cancelled across a requeue; and the exponential backoff ladder (caps,
// jitter bounds, healthy-interval reset) against a fake clock. The real
// subprocess topology is exercised end to end by ChaosTest.cpp; here the
// point is determinism - each scenario is exact, not probabilistic.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/ShardRouter.h"

#include "gtest/gtest.h"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace optabs {
namespace service {
namespace {

using tracer::JsonObject;

//===----------------------------------------------------------------------===//
// Fakes
//===----------------------------------------------------------------------===//

/// An in-process stand-in for one optabs-serve worker: real protocol
/// responses, scriptable deaths and hangs, full request log.
class FakeShard : public ShardEndpoint {
public:
  // Failure knobs.
  std::function<bool(const std::string &Op, const std::string &Line)>
      DieOnRequest;           ///< true = die instead of answering
  bool HangOnNonPing = false; ///< swallow every non-ping request
  bool GarbageOnDrain = false; ///< answer drain with an endless non-
                               ///< protocol stream, each line "in time"
  bool Dead = false;
  bool Hung = false;
  bool StreamingGarbage = false;

  // Observable worker state.
  std::vector<std::string> RequestLog;
  std::map<std::string, std::string> Programs;
  std::map<uint64_t, std::string> SessionPrograms;
  struct Job {
    uint64_t Session = 0;
    uint32_t Check = 0;
    bool Cancelled = false;
  };
  std::map<uint64_t, Job> Pending;

  bool sendLine(const std::string &Line) override {
    if (Dead)
      return false;
    RequestLog.push_back(Line);
    JsonLine Req;
    std::string Err;
    if (!JsonLine::parse(Line, Req, Err)) {
      OutQ.push_back(errorLine("", Err));
      return true;
    }
    std::string Op = Req.getString("op").value_or("");
    if (DieOnRequest && DieOnRequest(Op, Line)) {
      Dead = true;
      OutQ.clear();
      return true; // the write "succeeded"; the death shows on recv
    }
    if (HangOnNonPing && Op != "ping") {
      Hung = true;
      return true;
    }
    handle(Op, Req);
    return true;
  }

  RecvStatus recvLine(std::string &Out, int) override {
    if (StreamingGarbage && !Dead) {
      Out = "=== not a protocol line ===";
      return RecvStatus::Line;
    }
    if (!OutQ.empty()) {
      Out = OutQ.front();
      OutQ.pop_front();
      if (DieAfterQueue && OutQ.empty())
        Dead = true; // shutdown ack delivered; the worker exits now
      return RecvStatus::Line;
    }
    if (Hung && !Dead)
      return RecvStatus::Timeout;
    return RecvStatus::Closed;
  }

  bool alive() override { return !Dead; }
  void kill() override {
    Dead = true;
    OutQ.clear();
  }

private:
  void handle(const std::string &Op, const JsonLine &Req) {
    auto Emit = [this](const JsonObject &O) { OutQ.push_back(O.str()); };
    if (Op == "ping") {
      JsonObject O = response(true);
      O.field("op", Op);
      O.field("server", "fake-shard");
      Emit(O);
    } else if (Op == "register-program") {
      std::string Name = Req.getString("name").value_or("");
      Programs[Name] = Req.getString("text").value_or("");
      JsonObject O = response(true);
      O.field("op", Op);
      O.field("name", Name);
      O.field("epoch", ++Epoch);
      O.field("checks", 1);
      O.field("allocs", 2);
      Emit(O);
    } else if (Op == "open-session") {
      std::string Program = Req.getString("program").value_or("");
      if (!Programs.count(Program)) {
        OutQ.push_back(
            errorLine(Op, "program '" + Program + "' is not registered"));
        return;
      }
      uint64_t Id = NextSession++;
      SessionPrograms[Id] = Program;
      JsonObject O = response(true);
      O.field("op", Op);
      O.field("session", Id);
      Emit(O);
    } else if (Op == "submit") {
      uint64_t Id = NextJob++;
      Job J;
      J.Session = Req.getUInt("session").value_or(0);
      J.Check = static_cast<uint32_t>(Req.getUInt("check").value_or(0));
      Pending[Id] = J;
      JsonObject O = response(true);
      O.field("op", Op);
      O.field("job", Id);
      Emit(O);
    } else if (Op == "cancel" || Op == "close-session") {
      uint64_t Sess = Req.getUInt("session").value_or(0);
      size_t N = 0;
      for (auto &[Id, J] : Pending)
        if (J.Session == Sess && !J.Cancelled) {
          J.Cancelled = true;
          ++N;
        }
      JsonObject O = response(true);
      O.field("op", Op);
      if (Op == "cancel")
        O.field("cancelled", N);
      Emit(O);
    } else if (Op == "drain") {
      if (GarbageOnDrain) {
        StreamingGarbage = true; // recvLine now babbles forever
        return;
      }
      size_t N = 0;
      for (auto &[Id, J] : Pending) {
        JsonObject O = response(true);
        O.field("op", "result");
        O.field("job", Id);
        O.field("session", J.Session);
        if (J.Cancelled) {
          O.field("status", "cancelled");
          O.field("error", "cancelled by client");
        } else {
          O.field("status", "done");
          O.field("verdict", "proven");
          O.field("iterations", 1);
          O.field("cost", J.Check);
          O.field("param", "[P" + std::to_string(J.Check) + "]");
        }
        Emit(O);
        ++N;
      }
      Pending.clear();
      JsonObject O = response(true);
      O.field("op", Op);
      O.field("results", N);
      Emit(O);
    } else if (Op == "shutdown") {
      JsonObject O = response(true);
      O.field("op", Op);
      Emit(O);
      // Dead only after the ack drains, like the real worker.
      DieAfterQueue = true;
    } else {
      OutQ.push_back(errorLine(Op, "unknown op '" + Op + "'"));
    }
  }

  std::deque<std::string> OutQ;
  uint64_t NextSession = 1;
  uint64_t NextJob = 1;
  uint64_t Epoch = 0;
  bool DieAfterQueue = false;
};

class FakeHost : public ShardHost {
public:
  explicit FakeHost(unsigned N)
      : SpawnCount(N, 0), Live(N, nullptr), FailSpawns(N, 0) {}

  /// Called for every new incarnation so tests can arm failure knobs.
  std::function<void(unsigned Shard, unsigned Incarnation, FakeShard &)>
      Configure;
  std::vector<unsigned> SpawnCount;
  std::vector<FakeShard *> Live; ///< latest incarnation (dangles for older)
  std::vector<int> FailSpawns;   ///< fail the next N spawns of a shard

  std::unique_ptr<ShardEndpoint> spawn(unsigned Shard,
                                       std::string &Err) override {
    ++SpawnCount[Shard];
    if (FailSpawns[Shard] > 0) {
      --FailSpawns[Shard];
      Err = "injected spawn failure";
      return nullptr;
    }
    auto S = std::make_unique<FakeShard>();
    if (Configure)
      Configure(Shard, SpawnCount[Shard], *S);
    Live[Shard] = S.get();
    return S;
  }
};

class FakeClock : public RouterClock {
public:
  uint64_t Now = 1000;
  std::vector<uint64_t> Sleeps;
  uint64_t nowMs() override { return Now; }
  void sleepMs(uint64_t Ms) override {
    Sleeps.push_back(Ms);
    Now += Ms;
  }
};

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

ShardRouterOptions testOptions(unsigned Shards) {
  ShardRouterOptions O;
  O.NumShards = Shards;
  O.RequestTimeoutMs = 1000;
  O.MaxRequestRetries = 2;
  O.BackoffInitialMs = 100;
  O.BackoffMaxMs = 5000;
  O.BackoffResetMs = 60000;
  O.BackoffJitter = 0.0; // exact sleep asserts; jitter has its own test
  O.MaxRestartAttempts = 3;
  return O;
}

std::vector<std::string> run(ShardRouter &R, const std::string &Line) {
  std::vector<std::string> Out;
  R.handleLine(Line, Out);
  return Out;
}

const char *kRegisterFig =
    "{\"op\":\"register-program\",\"name\":\"fig\",\"text\":\"proc main { "
    "check(u); }\"}";

std::string openLine(const std::string &Client) {
  return "{\"op\":\"open-session\",\"program\":\"fig\",\"client\":\"" +
         Client + "\"}";
}

/// First response must be ok:true and parse; returns it.
JsonLine okResponse(const std::vector<std::string> &Out) {
  EXPECT_EQ(Out.size(), 1u);
  JsonLine R;
  std::string Err;
  EXPECT_TRUE(JsonLine::parse(Out.at(0), R, Err)) << Out.at(0);
  EXPECT_TRUE(R.getBool("ok").value_or(false)) << Out.at(0);
  return R;
}

//===----------------------------------------------------------------------===//
// Routing basics
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, PartitioningIsDeterministicAndCovering) {
  FakeHost Host(4);
  ShardRouter R(testOptions(4), Host);
  // Stable across runs and platforms (fnv1a, not std::hash)...
  EXPECT_EQ(R.shardFor("fig", "escape"), R.shardFor("fig", "escape"));
  // ...and different tenants do spread (sanity, not uniformity).
  bool Spread = false;
  for (int I = 1; I < 16 && !Spread; ++I)
    Spread = R.shardFor("fig", "client" + std::to_string(I)) !=
             R.shardFor("fig", "client0");
  EXPECT_TRUE(Spread);
}

TEST(ShardRouterTest, HappyPathRegistersRoutesAndDrains) {
  FakeHost Host(2);
  ShardRouter R(testOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  EXPECT_EQ(Host.SpawnCount[0] + Host.SpawnCount[1], 2u);

  JsonLine Reg = okResponse(run(R, kRegisterFig));
  EXPECT_EQ(Reg.getUInt("epoch").value_or(0), 1u);
  // The broadcast reached both workers.
  EXPECT_TRUE(Host.Live[0]->Programs.count("fig"));
  EXPECT_TRUE(Host.Live[1]->Programs.count("fig"));

  JsonLine Open = okResponse(run(R, openLine("escape")));
  EXPECT_EQ(Open.getUInt("session").value_or(0), 1u);
  JsonLine Sub = okResponse(
      run(R, "{\"op\":\"submit\",\"session\":1,\"check\":7}"));
  EXPECT_EQ(Sub.getUInt("job").value_or(0), 1u);

  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("\"job\":1"), std::string::npos);
  EXPECT_NE(Out[0].find("\"session\":1"), std::string::npos);
  EXPECT_NE(Out[0].find("\"param\":\"[P7]\""), std::string::npos);
  EXPECT_EQ(Out[1],
            "{\"v\":1,\"ok\":true,\"op\":\"drain\",\"results\":1,"
            "\"requeued\":0}");
}

TEST(ShardRouterTest, ShutdownReachesEveryWorkerAndStopsTheLoop) {
  FakeHost Host(2);
  ShardRouter R(testOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  std::vector<std::string> Out;
  EXPECT_FALSE(R.handleLine("{\"op\":\"shutdown\"}", Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0], "{\"v\":1,\"ok\":true,\"op\":\"shutdown\"}");
  for (unsigned I = 0; I < 2; ++I)
    EXPECT_NE(Host.Live[I]->RequestLog.back().find("shutdown"),
              std::string::npos);
}

//===----------------------------------------------------------------------===//
// Death during register-program
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, DeathDuringRegisterRestartsAndRetries) {
  FakeHost Host(2);
  // Incarnation 1 of shard 1 dies the moment it sees a registration.
  Host.Configure = [](unsigned Shard, unsigned Inc, FakeShard &S) {
    if (Shard == 1 && Inc == 1)
      S.DieOnRequest = [](const std::string &Op, const std::string &) {
        return Op == "register-program";
      };
  };
  ShardRouter R(testOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;

  JsonLine Reg = okResponse(run(R, kRegisterFig));
  EXPECT_EQ(Reg.getUInt("epoch").value_or(0), 1u);
  EXPECT_EQ(Host.SpawnCount[1], 2u); // died once, respawned once
  EXPECT_EQ(R.stats().Restarts, 1u);
  // The journal was not yet updated when the shard died, so the replay
  // sent nothing; the retried broadcast delivered the program.
  EXPECT_TRUE(Host.Live[1]->Programs.count("fig"));
  EXPECT_TRUE(Host.Live[0]->Programs.count("fig"));
}

//===----------------------------------------------------------------------===//
// Death during a re-register migration
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, DeathDuringReRegisterReplaysOldStateThenRetries) {
  FakeHost Host(2);
  ShardRouter R(testOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("escape")));
  okResponse(run(R, "{\"op\":\"submit\",\"session\":1,\"check\":3}"));
  unsigned Home = R.shardFor("fig", "escape");

  // The session's shard dies on the NEXT registration (the re-register).
  Host.Live[Home]->DieOnRequest = [](const std::string &Op,
                                     const std::string &) {
    return Op == "register-program";
  };
  std::string ReRegister =
      "{\"op\":\"register-program\",\"name\":\"fig\",\"text\":\"proc main "
      "{ check(v); }\"}";
  JsonLine Reg = okResponse(run(R, ReRegister));
  EXPECT_EQ(Reg.getUInt("epoch").value_or(0), 2u);

  // The restart replayed the OLD journal first (program text at the time
  // of death), re-opened the session, requeued the in-flight job - and
  // only then did the retried re-register land.
  FakeShard &S = *Host.Live[Home];
  EXPECT_EQ(S.Programs.at("fig"), "proc main { check(v); }");
  EXPECT_EQ(S.SessionPrograms.size(), 1u);
  ASSERT_EQ(S.Pending.size(), 1u);
  EXPECT_EQ(S.Pending.begin()->second.Check, 3u);
  EXPECT_EQ(R.stats().Requeued, 1u);

  // The requeued job still resolves, and the requeue is not silent.
  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("\"job\":1"), std::string::npos);
  EXPECT_NE(Out[0].find("\"status\":\"done\""), std::string::npos);
  EXPECT_NE(Out[1].find("\"requeued\":1"), std::string::npos);

  JsonLine Exp = okResponse(run(R, "{\"op\":\"explain\",\"job\":1}"));
  EXPECT_EQ(Exp.getUInt("requeues").value_or(0), 1u);
  EXPECT_NE(Exp.getString("note").value_or("").find("requeued"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Death with zero pending jobs
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, ZeroPendingDeathRestartsWithoutRequeue) {
  FakeHost Host(2);
  ShardRouter R(testOptions(2), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("escape")));
  unsigned Home = R.shardFor("fig", "escape");

  Host.Live[Home]->kill();
  // The next request routed there detects the death, restarts, replays
  // the registration and the session - and requeues nothing.
  JsonLine Sub = okResponse(
      run(R, "{\"op\":\"submit\",\"session\":1,\"check\":9}"));
  EXPECT_EQ(Sub.getUInt("job").value_or(0), 1u);
  EXPECT_EQ(R.stats().Restarts, 1u);
  EXPECT_EQ(R.stats().Requeued, 0u);
  FakeShard &S = *Host.Live[Home];
  EXPECT_TRUE(S.Programs.count("fig"));
  EXPECT_EQ(S.SessionPrograms.size(), 1u);
  ASSERT_EQ(S.Pending.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Hung shards: per-request timeout, bounded retries
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, HungShardIsKilledAndRetriesAreBounded) {
  FakeHost Host(1);
  // Every incarnation answers ping (so restarts "succeed") but swallows
  // real work: the pathological always-hung shard.
  Host.Configure = [](unsigned, unsigned, FakeShard &S) {
    S.HangOnNonPing = true;
  };
  FakeClock Clock;
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;

  std::vector<std::string> Out = run(R, kRegisterFig);
  ASSERT_EQ(Out.size(), 1u);
  JsonLine Resp;
  ASSERT_TRUE(JsonLine::parse(Out[0], Resp, Err));
  EXPECT_FALSE(Resp.getBool("ok").value_or(true));
  EXPECT_NE(Resp.getString("error").value_or("").find("did not answer"),
            std::string::npos);
  // MaxRequestRetries=2 -> exactly 3 attempts: the original incarnation
  // plus two restarts, every one killed after its timeout.
  EXPECT_EQ(Host.SpawnCount[0], 3u);
  EXPECT_EQ(R.stats().Restarts, 2u);
}

TEST(ShardRouterTest, RestartExhaustionFailsPendingJobsLoudly) {
  FakeHost Host(1);
  FakeClock Clock; // every failed respawn sleeps the ladder; keep it fake
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("escape")));
  okResponse(run(R, "{\"op\":\"submit\",\"session\":1,\"check\":1}"));

  // The shard dies and every respawn fails: the job must fail with a
  // structured error instead of hanging the drain forever.
  Host.Live[0]->kill();
  Host.FailSpawns[0] = 1000;
  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(Out[0].find("unavailable"), std::string::npos);
  EXPECT_NE(Out[1].find("\"results\":1"), std::string::npos);
  EXPECT_EQ(R.stats().Failed, 1u);
  EXPECT_EQ(R.stats().Pending, 0u);

  // A later drain must not re-emit the failed job.
  Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_NE(Out[0].find("\"results\":0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cancel vs requeue
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, CancelledJobsAreNotResurrectedByReplay) {
  FakeHost Host(1);
  ShardRouter R(testOptions(1), Host);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("escape")));
  okResponse(run(R, "{\"op\":\"submit\",\"session\":1,\"check\":1}"));
  okResponse(run(R, "{\"op\":\"submit\",\"session\":1,\"check\":2}"));
  okResponse(run(R, "{\"op\":\"cancel\",\"session\":1}"));

  Host.Live[0]->kill();
  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 3u);
  for (int I = 0; I < 2; ++I) {
    EXPECT_NE(Out[I].find("\"status\":\"cancelled\""), std::string::npos);
    EXPECT_NE(Out[I].find("cancelled by client"), std::string::npos);
  }
  // The replayed worker never saw the cancelled jobs again.
  EXPECT_TRUE(Host.Live[0]->Pending.empty());
  EXPECT_EQ(R.stats().Requeued, 0u);
}

//===----------------------------------------------------------------------===//
// Retried requests rebuild shard-local ids after a replay
//===----------------------------------------------------------------------===//

// A restart renumbers shard-local session ids: replay skips Closed
// sessions while the fresh worker mints ids from 1. A submit or cancel
// retried after that restart must re-read SessionRec::ShardId, or it
// targets a stale id - a different session on the new worker.
TEST(ShardRouterTest, RetriedSubmitAndCancelUseFreshSessionIdsAfterReplay) {
  FakeHost Host(1);
  FakeClock Clock;
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("a"))); // sup 1, shard-local 1
  okResponse(run(R, openLine("b"))); // sup 2, shard-local 2
  okResponse(run(R, "{\"op\":\"close-session\",\"session\":1}"));

  // The worker dies on the submit; the retry lands after a replay in
  // which session sup-2 is the only live session, re-minted as local 1.
  Host.Live[0]->DieOnRequest = [](const std::string &Op,
                                  const std::string &) {
    return Op == "submit";
  };
  JsonLine Sub = okResponse(
      run(R, "{\"op\":\"submit\",\"session\":2,\"check\":7}"));
  EXPECT_EQ(Sub.getUInt("job").value_or(0), 1u);
  EXPECT_EQ(R.stats().Restarts, 1u);
  {
    FakeShard &S = *Host.Live[0];
    EXPECT_EQ(S.SessionPrograms.size(), 1u);
    ASSERT_EQ(S.Pending.size(), 1u);
    // The stale pre-replay line would have carried session 2, which does
    // not exist on this incarnation.
    EXPECT_EQ(S.Pending.begin()->second.Session, 1u);
    EXPECT_EQ(S.Pending.begin()->second.Check, 7u);
  }

  // Same ladder for cancel: close sup-2 so the id stream diverges again,
  // then kill the worker on the cancel of sup-3.
  okResponse(run(R, openLine("c"))); // sup 3, shard-local 2
  okResponse(run(R, "{\"op\":\"submit\",\"session\":3,\"check\":9}"));
  okResponse(run(R, "{\"op\":\"close-session\",\"session\":2}"));
  Host.Live[0]->DieOnRequest = [](const std::string &Op,
                                  const std::string &) {
    return Op == "cancel";
  };
  okResponse(run(R, "{\"op\":\"cancel\",\"session\":3}"));
  EXPECT_EQ(R.stats().Restarts, 2u);
  {
    FakeShard &S = *Host.Live[0];
    EXPECT_EQ(S.SessionPrograms.size(), 1u);
    ASSERT_EQ(S.Pending.size(), 1u); // the requeued sup-3 job
    EXPECT_EQ(S.Pending.begin()->second.Session, 1u);
    // The retried cancel reached the requeued job: a stale session id
    // would have cancelled nothing.
    EXPECT_TRUE(S.Pending.begin()->second.Cancelled);
  }

  // Everything still resolves: both jobs were cancelled along the way.
  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_NE(Out[0].find("\"status\":\"cancelled\""), std::string::npos);
  EXPECT_NE(Out[1].find("\"status\":\"cancelled\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Garbage-streaming shards cannot pin the drain loop
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, GarbageStreamingDrainIsBoundedKilledAndRequeued) {
  FakeHost Host(1);
  // Incarnation 1 answers drain with an endless stream of non-protocol
  // lines, each arriving within the request timeout; later incarnations
  // are healthy.
  Host.Configure = [](unsigned, unsigned Inc, FakeShard &S) {
    if (Inc == 1)
      S.GarbageOnDrain = true;
  };
  FakeClock Clock;
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  okResponse(run(R, openLine("escape")));
  okResponse(run(R, "{\"op\":\"submit\",\"session\":1,\"check\":4}"));

  // Without the per-drain line budget this call never returns.
  std::vector<std::string> Out = run(R, "{\"op\":\"drain\"}");
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_NE(Out[0].find("\"status\":\"done\""), std::string::npos);
  EXPECT_NE(Out[0].find("\"param\":\"[P4]\""), std::string::npos);
  EXPECT_NE(Out[1].find("\"requeued\":1"), std::string::npos);
  EXPECT_EQ(R.stats().Restarts, 1u);
  EXPECT_EQ(R.stats().Fulfilled, 1u);
  EXPECT_EQ(R.stats().Pending, 0u);
}

//===----------------------------------------------------------------------===//
// Backoff ladder (fake clock)
//===----------------------------------------------------------------------===//

TEST(ShardRouterTest, BackoffDoublesToCapAndResetsAfterHealthyInterval) {
  FakeHost Host(1);
  FakeClock Clock;
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  EXPECT_TRUE(Clock.Sleeps.empty()); // first start pays no backoff
  okResponse(run(R, kRegisterFig));

  // Eight rapid deaths: 100,200,400,800,1600,3200,5000,5000 (capped).
  for (int I = 0; I < 8; ++I) {
    Host.Live[0]->kill();
    okResponse(run(R, openLine("c" + std::to_string(I))));
  }
  ASSERT_EQ(Clock.Sleeps.size(), 8u);
  EXPECT_EQ(Clock.Sleeps,
            (std::vector<uint64_t>{100, 200, 400, 800, 1600, 3200, 5000,
                                   5000}));
  EXPECT_EQ(R.nextBackoffMsForTesting(0), 5000u);

  // A long healthy interval earns a fresh ladder.
  Clock.Now += 60000;
  Host.Live[0]->kill();
  okResponse(run(R, openLine("fresh")));
  ASSERT_EQ(Clock.Sleeps.size(), 9u);
  EXPECT_EQ(Clock.Sleeps.back(), 100u);
}

TEST(ShardRouterTest, BackoffJitterStaysInBand) {
  FakeHost Host(1);
  FakeClock Clock;
  ShardRouterOptions O = testOptions(1);
  O.BackoffJitter = 0.25;
  ShardRouter R(O, Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));
  Host.Live[0]->kill();
  okResponse(run(R, openLine("escape")));
  ASSERT_EQ(Clock.Sleeps.size(), 1u);
  // delay in [base, base * 1.25] with base = 100.
  EXPECT_GE(Clock.Sleeps[0], 100u);
  EXPECT_LE(Clock.Sleeps[0], 125u);
}

TEST(ShardRouterTest, SpawnFailuresWithinOneEpisodeKeepEscalating) {
  FakeHost Host(1);
  FakeClock Clock;
  ShardRouter R(testOptions(1), Host, &Clock);
  std::string Err;
  ASSERT_TRUE(R.start(Err)) << Err;
  okResponse(run(R, kRegisterFig));

  // Death, then two spawn failures inside the restart episode: three
  // sleeps, each one rung higher on the ladder.
  Host.Live[0]->kill();
  Host.FailSpawns[0] = 2;
  okResponse(run(R, openLine("escape")));
  ASSERT_EQ(Clock.Sleeps.size(), 3u);
  EXPECT_EQ(Clock.Sleeps, (std::vector<uint64_t>{100, 200, 400}));
}

} // namespace
} // namespace service
} // namespace optabs
