//===- MinCostSatTest.cpp - Unit tests for the viable-set solver -------------===//

#include "tracer/MinCostSat.h"

#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using optabs::Prng;
using optabs::tracer::BoolLit;
using optabs::tracer::Cnf;
using optabs::tracer::solveMinCost;

BoolLit pos(uint32_t V) { return BoolLit{V, true}; }
BoolLit neg(uint32_t V) { return BoolLit{V, false}; }

TEST(Cnf, EmptyIsTrue) {
  Cnf F;
  auto Model = solveMinCost(F, 8);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Cost, 0u);
  for (bool B : Model->Assignment)
    EXPECT_FALSE(B);
}

TEST(Cnf, EmptyClauseIsUnsat) {
  Cnf F;
  F.addClause({});
  EXPECT_FALSE(solveMinCost(F, 4).has_value());
}

TEST(Cnf, TautologiesAreDropped) {
  Cnf F;
  F.addClause({pos(1), neg(1)});
  EXPECT_EQ(F.size(), 0u);
  F.addClause({pos(1), pos(1)});
  ASSERT_EQ(F.size(), 1u);
  EXPECT_EQ(F.clauses()[0].size(), 1u);
}

TEST(Cnf, DuplicateClausesAreDropped) {
  Cnf F;
  F.addClause({pos(2), pos(1)});
  F.addClause({pos(1), pos(2)});
  EXPECT_EQ(F.size(), 1u);
}

TEST(MinCostSat, UnitContradiction) {
  Cnf F;
  F.addClause({pos(0)});
  F.addClause({neg(0)});
  EXPECT_FALSE(solveMinCost(F, 2).has_value());
}

TEST(MinCostSat, PicksCheapestModel) {
  // (a or b or c) /\ (a or d): setting a alone costs 1.
  Cnf F;
  F.addClause({pos(0), pos(1), pos(2)});
  F.addClause({pos(0), pos(3)});
  auto Model = solveMinCost(F, 4);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Cost, 1u);
  EXPECT_TRUE(Model->Assignment[0]);
}

TEST(MinCostSat, DisjointPositiveClausesNeedOneEach) {
  Cnf F;
  F.addClause({pos(0), pos(1)});
  F.addClause({pos(2), pos(3)});
  F.addClause({pos(4)});
  auto Model = solveMinCost(F, 5);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Cost, 3u);
}

TEST(MinCostSat, NegativeLiteralsAreFree) {
  // (!a or b): all-false satisfies at cost 0.
  Cnf F;
  F.addClause({neg(0), pos(1)});
  auto Model = solveMinCost(F, 2);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Cost, 0u);
}

TEST(MinCostSat, ChainedImplications) {
  // a, a->b, b->c (as clauses): forces cost 3.
  Cnf F;
  F.addClause({pos(0)});
  F.addClause({neg(0), pos(1)});
  F.addClause({neg(1), pos(2)});
  auto Model = solveMinCost(F, 3);
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->Cost, 3u);
  EXPECT_TRUE(Model->Assignment[0] && Model->Assignment[1] &&
              Model->Assignment[2]);
}

TEST(MinCostSat, SignatureIsOrderIndependent) {
  Cnf A, B;
  A.addClause({pos(0)});
  A.addClause({pos(1), neg(2)});
  B.addClause({pos(1), neg(2)});
  B.addClause({pos(0)});
  EXPECT_EQ(A.signature(), B.signature());

  Cnf C;
  C.addClause({pos(0)});
  EXPECT_NE(A.signature(), C.signature());
}

/// Cross-check the solver against brute force on random small instances.
TEST(MinCostSat, MatchesBruteForceOnRandomInstances) {
  Prng Rng(0xC0FFEE);
  for (int Round = 0; Round < 200; ++Round) {
    const uint32_t NumVars = 1 + Rng.nextBelow(8);
    Cnf F;
    unsigned NumClauses = Rng.nextBelow(10);
    for (unsigned CI = 0; CI < NumClauses; ++CI) {
      std::vector<BoolLit> Clause;
      unsigned Len = Rng.nextBelow(4); // may be empty => unsat
      for (unsigned LI = 0; LI < Len; ++LI)
        Clause.push_back(BoolLit{static_cast<uint32_t>(Rng.nextBelow(NumVars)),
                                 Rng.chance(1, 2)});
      F.addClause(std::move(Clause));
    }

    // Brute force.
    int BestCost = -1;
    for (uint32_t Mask = 0; Mask < (1u << NumVars); ++Mask) {
      std::vector<bool> Assign(NumVars);
      int Cost = 0;
      for (uint32_t I = 0; I < NumVars; ++I) {
        Assign[I] = (Mask >> I) & 1;
        Cost += Assign[I];
      }
      if (F.eval(Assign) && (BestCost < 0 || Cost < BestCost))
        BestCost = Cost;
    }

    auto Model = solveMinCost(F, NumVars);
    if (BestCost < 0) {
      EXPECT_FALSE(Model.has_value()) << "round " << Round;
    } else {
      ASSERT_TRUE(Model.has_value()) << "round " << Round;
      EXPECT_EQ(static_cast<int>(Model->Cost), BestCost)
          << "round " << Round;
      EXPECT_TRUE(F.eval(Model->Assignment)) << "round " << Round;
    }
  }
}

} // namespace
