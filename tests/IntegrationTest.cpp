//===- IntegrationTest.cpp - Cross-module integration on synthetic suites -----===//
//
// Parameterized over the small benchmark suite: for each benchmark,
// validates that the full pipeline holds together - every state the
// forward analysis reports at a check is witnessed by an extractable,
// replayable trace (Lemma 1); driver results are deterministic across
// runs; and both clients' verdict mixes stay in the regimes the paper's
// Figure 12 reports.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "pointer/PointsTo.h"
#include "reporting/Harness.h"
#include "synth/Generator.h"
#include "tracer/QueryDriver.h"
#include "typestate/Typestate.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using tracer::Verdict;

class SuiteTest : public ::testing::TestWithParam<size_t> {
protected:
  const synth::BenchConfig &config() const {
    return synth::paperSuite()[GetParam()];
  }
};

TEST_P(SuiteTest, EveryEscapeCheckStateHasValidTrace) {
  synth::Benchmark B = synth::generate(config());
  escape::EscapeAnalysis A(B.P);
  escape::EscParam Prm = A.paramFromBits({}); // cheapest abstraction
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(B.P, A, Prm);
  FA.run(A.initialState());
  size_t Validated = 0;
  for (CheckId Check : B.EscChecks) {
    for (const auto &Target : FA.statesAtCheck(Check)) {
      auto T = FA.extractTrace(Check, Target);
      ASSERT_TRUE(T.has_value()) << config().Name;
      auto States = FA.replay(*T, A.initialState());
      ASSERT_EQ(States.back(), Target) << config().Name;
      ++Validated;
    }
  }
  EXPECT_GT(Validated, 0u);
}

TEST_P(SuiteTest, EveryTypestateCheckStateHasValidTrace) {
  synth::Benchmark B = synth::generate(config());
  auto Pt = pointer::runPointsTo(B.P);
  typestate::TypestateSpec Spec = typestate::TypestateSpec::stress();
  // Validate for the first queried site only (the engine is shared; one
  // site per benchmark keeps the test fast).
  ASSERT_FALSE(B.TsChecks.empty());
  VarId V = B.P.checkSite(B.TsChecks[0]).Var;
  std::optional<AllocId> Site;
  Pt.pointsTo(V).forEach([&](size_t H) {
    if (!Site)
      Site = AllocId(static_cast<uint32_t>(H));
  });
  ASSERT_TRUE(Site.has_value());
  typestate::TypestateAnalysis A(B.P, Spec, *Site, Pt);
  typestate::TsParam Prm = A.paramFromBits({});
  dataflow::ForwardAnalysis<typestate::TypestateAnalysis> FA(B.P, A, Prm);
  FA.run(A.initialState());
  for (CheckId Check : B.TsChecks) {
    for (const auto &Target : FA.statesAtCheck(Check)) {
      auto T = FA.extractTrace(Check, Target);
      ASSERT_TRUE(T.has_value()) << config().Name;
      auto States = FA.replay(*T, A.initialState());
      ASSERT_EQ(States.back(), Target) << config().Name;
    }
  }
}

TEST_P(SuiteTest, DriverVerdictsAreDeterministic) {
  synth::Benchmark B = synth::generate(config());
  escape::EscapeAnalysis A(B.P);
  tracer::TracerOptions Options;
  Options.MaxItersPerQuery = 24;
  auto RunOnce = [&] {
    tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
    std::vector<std::pair<Verdict, std::string>> Summary;
    for (const auto &O : Driver.run(B.EscChecks))
      Summary.push_back({O.V, O.CheapestParam});
    return Summary;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST_P(SuiteTest, VerdictMixMatchesFigure12Regime) {
  reporting::BenchRun Run = reporting::runBenchmark(config());
  // Type-state: fully resolved; impossible at least comparable to proven
  // (the stress property penalizes every must-alias imprecision). The
  // smallest benchmarks sit near parity, the larger ones are
  // impossible-dominated as in the paper's Figure 12.
  EXPECT_EQ(Run.Ts.count(Verdict::Unresolved), 0u) << config().Name;
  EXPECT_GE(Run.Ts.count(Verdict::Impossible) * 2,
            Run.Ts.count(Verdict::Proven))
      << config().Name;
  // Thread-escape: >= 85% resolution (the paper's average), both verdicts
  // populated.
  unsigned Resolved =
      Run.Esc.count(Verdict::Proven) + Run.Esc.count(Verdict::Impossible);
  EXPECT_GE(Resolved * 100, Run.Esc.Queries.size() * 85) << config().Name;
  EXPECT_GT(Run.Esc.count(Verdict::Proven), 0u);
  EXPECT_GT(Run.Esc.count(Verdict::Impossible), 0u);
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, SuiteTest,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return synth::paperSuite()[Info.param].Name;
                         });

TEST(Integration, ProvenAbstractionsActuallyProve) {
  // Re-run the forward analysis with each reported cheapest abstraction
  // and confirm the query really is proven by it (end-to-end validation of
  // the whole loop on a real benchmark).
  synth::Benchmark B = synth::generate(synth::paperSuite()[0]);
  escape::EscapeAnalysis A(B.P);
  tracer::TracerOptions Options;
  Options.MaxItersPerQuery = 24;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
  auto Outcomes = Driver.run(B.EscChecks);
  for (const auto &O : Outcomes) {
    if (O.V != Verdict::Proven)
      continue;
    // Reconstruct the abstraction from its canonical string.
    std::vector<bool> Bits(B.P.numAllocs(), false);
    std::string Key = O.CheapestParam; // "[L:a,b,...]"
    std::string Names = Key.substr(3, Key.size() - 4);
    std::stringstream SS(Names);
    std::string Name;
    while (std::getline(SS, Name, ',')) {
      if (Name.empty())
        continue;
      AllocId H = B.P.findAlloc(Name);
      ASSERT_TRUE(H.isValid()) << Name;
      Bits[H.index()] = true;
    }
    escape::EscParam Prm = A.paramFromBits(Bits);
    ASSERT_EQ(A.paramCost(Prm), O.CheapestCost);
    dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(B.P, A, Prm);
    FA.run(A.initialState());
    formula::Dnf NotQ = A.notQ(O.Check);
    for (const auto &D : FA.statesAtCheck(O.Check))
      EXPECT_FALSE(NotQ.eval([&](formula::AtomId At) {
        return A.evalAtom(At, Prm, D);
      })) << "reported abstraction does not prove its query";
  }
}

} // namespace
