//===- FormulaTest.cpp - Unit tests for the formula library ----------------===//

#include "formula/Dnf.h"
#include "formula/Formula.h"

#include "gtest/gtest.h"

#include <set>

namespace {

using optabs::formula::AtomEval;
using optabs::formula::AtomId;
using optabs::formula::Cube;
using optabs::formula::Dnf;
using optabs::formula::Formula;
using optabs::formula::Lit;

AtomEval evalFromSet(std::set<AtomId> TrueAtoms) {
  return [TrueAtoms = std::move(TrueAtoms)](AtomId A) {
    return TrueAtoms.count(A) > 0;
  };
}

TEST(Lit, NegationAndOrdering) {
  Lit A = Lit::pos(7);
  EXPECT_EQ(A.atom(), 7u);
  EXPECT_FALSE(A.isNeg());
  Lit NotA = A.negate();
  EXPECT_TRUE(NotA.isNeg());
  EXPECT_EQ(NotA.atom(), 7u);
  EXPECT_EQ(NotA.negate(), A);
  EXPECT_LT(A, NotA);
  EXPECT_LT(Lit::neg(3), Lit::pos(4));
}

TEST(Cube, MakeNormalizesAndRejectsContradictions) {
  auto C = Cube::make({Lit::pos(2), Lit::pos(1), Lit::pos(2)});
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->size(), 2u);
  EXPECT_EQ(C->literals()[0], Lit::pos(1));
  EXPECT_EQ(C->literals()[1], Lit::pos(2));

  auto Contradiction = Cube::make({Lit::pos(5), Lit::neg(5)});
  EXPECT_FALSE(Contradiction.has_value());
}

TEST(Cube, Implication) {
  Cube AB = *Cube::make({Lit::pos(1), Lit::pos(2)});
  Cube A = *Cube::make({Lit::pos(1)});
  EXPECT_TRUE(AB.implies(A));
  EXPECT_FALSE(A.implies(AB));
  EXPECT_TRUE(A.implies(*Cube::make({})));
  // Different polarity is a different literal.
  EXPECT_FALSE(AB.implies(*Cube::make({Lit::neg(1)})));
}

TEST(Cube, ConjoinMergesOrFails) {
  Cube A = *Cube::make({Lit::pos(1)});
  Cube B = *Cube::make({Lit::pos(2), Lit::neg(3)});
  auto AB = Cube::conjoin(A, B);
  ASSERT_TRUE(AB.has_value());
  EXPECT_EQ(AB->size(), 3u);
  EXPECT_FALSE(Cube::conjoin(A, *Cube::make({Lit::neg(1)})).has_value());
}

TEST(Dnf, Constants) {
  EXPECT_TRUE(Dnf::constFalse().isFalse());
  EXPECT_TRUE(Dnf::constTrue().isTrue());
  EXPECT_FALSE(Dnf::constTrue().eval(evalFromSet({})) == false);
  EXPECT_FALSE(Dnf::constFalse().eval(evalFromSet({1, 2, 3})));
}

TEST(Dnf, SimplifyDropsSubsumedDisjuncts) {
  // a \/ (a /\ b) \/ c  ==>  a \/ c
  Dnf D = Dnf::fromCubes({*Cube::make({Lit::pos(1), Lit::pos(2)}),
                          *Cube::make({Lit::pos(1)}),
                          *Cube::make({Lit::pos(3)})});
  D.sortBySize();
  D.simplify();
  EXPECT_EQ(D.size(), 2u);
  EXPECT_EQ(D.cubes()[0].size(), 1u);
  EXPECT_EQ(D.cubes()[1].size(), 1u);
}

TEST(Dnf, SortIsBySizeThenLiterals) {
  Dnf D = Dnf::fromCubes({*Cube::make({Lit::pos(9)}),
                          *Cube::make({Lit::pos(1), Lit::pos(2)}),
                          *Cube::make({Lit::pos(3)})});
  D.sortBySize();
  EXPECT_EQ(D.cubes()[0].literals()[0], Lit::pos(3));
  EXPECT_EQ(D.cubes()[1].literals()[0], Lit::pos(9));
  EXPECT_EQ(D.cubes()[2].size(), 2u);
}

TEST(Dnf, DropKKeepsSatisfiedDisjunct) {
  // Three disjuncts; only the largest is satisfied. dropK(1) must keep it.
  Dnf D = Dnf::fromCubes(
      {*Cube::make({Lit::pos(1)}), *Cube::make({Lit::pos(2)}),
       *Cube::make({Lit::pos(3), Lit::pos(4), Lit::pos(5)})});
  AtomEval Eval = evalFromSet({3, 4, 5});
  D.sortBySize();
  D.dropK(1, Eval);
  ASSERT_EQ(D.size(), 1u);
  EXPECT_EQ(D.cubes()[0].size(), 3u);
  EXPECT_TRUE(D.eval(Eval));
}

TEST(Dnf, DropKKeepsShortPrefixPlusSatisfied) {
  Dnf D = Dnf::fromCubes(
      {*Cube::make({Lit::pos(1)}), *Cube::make({Lit::pos(2)}),
       *Cube::make({Lit::pos(6), Lit::pos(7)}),
       *Cube::make({Lit::pos(3), Lit::pos(4), Lit::pos(5)})});
  AtomEval Eval = evalFromSet({3, 4, 5});
  D.sortBySize();
  D.dropK(3, Eval);
  ASSERT_EQ(D.size(), 3u);
  // First two shortest kept, plus the satisfied one.
  EXPECT_TRUE(D.eval(Eval));
}

TEST(Dnf, ApproxUnderapproximates) {
  // Every model of approx(f) must be a model of f (condition 1 of approx).
  Dnf D = Dnf::fromCubes(
      {*Cube::make({Lit::pos(1), Lit::neg(2)}), *Cube::make({Lit::pos(2)}),
       *Cube::make({Lit::pos(3)}), *Cube::make({Lit::pos(4)})});
  Dnf Original = D;
  AtomEval Eval = evalFromSet({3});
  D.approx(2, Eval);
  EXPECT_LE(D.size(), 2u);
  // Exhaustively check over the 4 atoms: gamma(approx) subset gamma(f).
  for (unsigned Mask = 0; Mask < 32; ++Mask) {
    AtomEval E = [Mask](AtomId A) { return A < 5 && (Mask >> A) & 1; };
    if (D.eval(E)) {
      EXPECT_TRUE(Original.eval(E));
    }
  }
  EXPECT_TRUE(D.eval(Eval)); // condition 2: keeps the current (p, d)
}

TEST(Dnf, ProductDistributes) {
  // (a \/ b) /\ (c \/ !a) = ac \/ (a/\!a=false) \/ bc \/ b!a
  Dnf AB =
      Dnf::fromCubes({*Cube::make({Lit::pos(1)}), *Cube::make({Lit::pos(2)})});
  Dnf CNotA =
      Dnf::fromCubes({*Cube::make({Lit::pos(3)}), *Cube::make({Lit::neg(1)})});
  AtomEval Unused;
  Dnf Prod = Dnf::product(AB, CNotA, 0, Unused);
  EXPECT_EQ(Prod.size(), 3u);
  for (unsigned Mask = 0; Mask < 16; ++Mask) {
    AtomEval E = [Mask](AtomId A) { return A < 4 && (Mask >> A) & 1; };
    EXPECT_EQ(Prod.eval(E), AB.eval(E) && CNotA.eval(E));
  }
}

TEST(Formula, ConstantFolding) {
  Formula T = Formula::constant(true);
  Formula F = Formula::constant(false);
  EXPECT_TRUE(Formula::conj({T, T}).isTrue());
  EXPECT_TRUE(Formula::conj({T, F}).isFalse());
  EXPECT_TRUE(Formula::disj({F, F}).isFalse());
  EXPECT_TRUE(Formula::disj({F, T}).isTrue());
  EXPECT_TRUE(Formula::negate(T).isFalse());
  EXPECT_TRUE(Formula::conj({}).isTrue());
  EXPECT_TRUE(Formula::disj({}).isFalse());
}

TEST(Formula, NegationPushesToLiterals) {
  Formula F = Formula::negate(
      Formula::conj({Formula::atom(1), Formula::negAtom(2)}));
  // !(a /\ !b) = !a \/ b
  for (unsigned Mask = 0; Mask < 8; ++Mask) {
    AtomEval E = [Mask](AtomId A) { return (Mask >> A) & 1; };
    bool Expected = !(E(1) && !E(2));
    EXPECT_EQ(F.eval(E), Expected);
  }
}

TEST(Formula, IteSemantics) {
  Formula F = Formula::ite(Formula::atom(1), Formula::atom(2),
                           Formula::atom(3));
  for (unsigned Mask = 0; Mask < 16; ++Mask) {
    AtomEval E = [Mask](AtomId A) { return (Mask >> A) & 1; };
    EXPECT_EQ(F.eval(E), E(1) ? E(2) : E(3));
  }
}

TEST(Formula, ToDnfAgreesWithEval) {
  // Random-ish structured formula; exhaustive agreement over 5 atoms.
  Formula F = Formula::disj(
      {Formula::conj({Formula::atom(0), Formula::negAtom(1)}),
       Formula::conj({Formula::atom(2),
                      Formula::disj({Formula::atom(3), Formula::negAtom(4)}),
                      Formula::negAtom(0)})});
  Dnf D = F.toDnf();
  for (unsigned Mask = 0; Mask < 32; ++Mask) {
    AtomEval E = [Mask](AtomId A) { return (Mask >> A) & 1; };
    EXPECT_EQ(D.eval(E), F.eval(E)) << "mask=" << Mask;
  }
}

TEST(Formula, ToStringIsReadable) {
  Formula F = Formula::conj({Formula::atom(1), Formula::negAtom(2)});
  auto Name = [](AtomId A) { return "a" + std::to_string(A); };
  EXPECT_EQ(F.toString(Name), "(a1 /\\ !a2)");
}

TEST(Dnf, ToStringIsReadable) {
  Dnf D = Dnf::fromCubes(
      {*Cube::make({Lit::pos(1)}), *Cube::make({Lit::pos(2), Lit::neg(3)})});
  auto Name = [](AtomId A) { return "a" + std::to_string(A); };
  EXPECT_EQ(D.toString(Name), "a1 \\/ (a2 /\\ !a3)");
  EXPECT_EQ(Dnf::constTrue().toString(Name), "true");
  EXPECT_EQ(Dnf::constFalse().toString(Name), "false");
}

} // namespace
