//===- AuditTest.cpp - Checked invariants, certificates, event trace ----------===//
//
// The audit subsystem's contract, exercised on hand-broken inputs and on
// healthy end-to-end runs:
//
//  * Dnf::dropK retains K cubes (not K-1) when a satisfied cube sits in
//    the kept prefix, and reports (instead of asserting) when Theorem 3's
//    progress precondition is violated;
//  * BackwardMetaAnalysis::run rejects malformed inputs (wrong state
//    sequence length, not(q) not holding) with a structured report and a
//    nullopt result - never a silent unsound formula;
//  * Cnf::addClause deduplicates exactly through its hash index;
//  * the certificate checker validates healthy verdicts and flags tampered
//    ones;
//  * the JSONL event trace parses and carries the documented events;
//  * a full audited run of the integration benchmark is clean at 1 and 8
//    threads, for both clients.
//
//===----------------------------------------------------------------------===//

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "formula/Dnf.h"
#include "ir/Parser.h"
#include "meta/Backward.h"
#include "reporting/Harness.h"
#include "support/Invariants.h"
#include "synth/Generator.h"
#include "tracer/Certificates.h"
#include "tracer/MinCostSat.h"
#include "tracer/QueryDriver.h"

#include "gtest/gtest.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace optabs;
using formula::AtomId;
using formula::Cube;
using formula::Dnf;
using formula::Lit;

//===----------------------------------------------------------------------===//
// InvariantSink
//===----------------------------------------------------------------------===//

TEST(InvariantSink, RecordsAndSnapshots) {
  support::InvariantSink Sink;
  EXPECT_EQ(Sink.count(), 0u);
  support::reportInvariant(&Sink, "some-check", "SomeFunc", "details");
  ASSERT_EQ(Sink.count(), 1u);
  auto Snapshot = Sink.snapshot();
  EXPECT_EQ(Snapshot[0].Check, "some-check");
  EXPECT_EQ(Snapshot[0].Where, "SomeFunc");
  EXPECT_EQ(Snapshot[0].Message, "details");
  Sink.clear();
  EXPECT_EQ(Sink.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Dnf::dropK retention (Theorem 3 progress)
//===----------------------------------------------------------------------===//

Dnf threeCubes() {
  // Sizes 1, 2, 3 - already sorted by size as dropK assumes.
  return Dnf::fromCubes({*Cube::make({Lit::pos(0)}),
                         *Cube::make({Lit::pos(1), Lit::pos(2)}),
                         *Cube::make({Lit::pos(3), Lit::pos(4), Lit::pos(5)})});
}

TEST(DropK, KeepsFullKWhenPrefixHasSatisfiedCube) {
  Dnf F = threeCubes();
  support::InvariantSink Sink;
  // Atom 0 true: the first cube is satisfied and sits inside the K-prefix.
  auto Eval = [](AtomId A) { return A == 0; };
  F.dropK(2, Eval, &Sink);
  // The historical bug returned only K-1 cubes here.
  EXPECT_EQ(F.size(), 2u);
  EXPECT_TRUE(F.eval(Eval));
  EXPECT_EQ(Sink.count(), 0u);
}

TEST(DropK, SwapsInSatisfiedCubeBeyondThePrefix) {
  Dnf F = threeCubes();
  support::InvariantSink Sink;
  // Only the last (largest) cube is satisfied: it must displace the K-th.
  auto Eval = [](AtomId A) { return A >= 3; };
  F.dropK(2, Eval, &Sink);
  EXPECT_EQ(F.size(), 2u);
  EXPECT_TRUE(F.eval(Eval));
  EXPECT_EQ(Sink.count(), 0u);
}

TEST(DropK, ReportsWhenNoCubeIsSatisfied) {
  Dnf F = threeCubes();
  support::InvariantSink Sink;
  // Nothing satisfied: the progress precondition of Theorem 3 is violated.
  // dropK must keep K cubes (sound under-approximation) and report.
  auto Eval = [](AtomId) { return false; };
  F.dropK(2, Eval, &Sink);
  EXPECT_EQ(F.size(), 2u);
  ASSERT_EQ(Sink.count(), 1u);
  EXPECT_EQ(Sink.snapshot()[0].Check, "dropk-progress");
}

TEST(DropK, ReportsBadBeamWidthAndLeavesFormulaIntact) {
  Dnf F = threeCubes();
  support::InvariantSink Sink;
  F.dropK(0, [](AtomId) { return true; }, &Sink);
  EXPECT_EQ(F.size(), 3u);
  ASSERT_EQ(Sink.count(), 1u);
  EXPECT_EQ(Sink.snapshot()[0].Check, "dropk-beam-width");
}

//===----------------------------------------------------------------------===//
// BackwardMetaAnalysis precondition checks on hand-broken inputs
//===----------------------------------------------------------------------===//

ir::Program parse(const std::string &Src) {
  ir::Program P;
  std::string Error;
  bool Ok = ir::parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// A program whose single check fails under the cheapest abstraction: the
/// object escapes through the global, so "a thread-local" is refuted.
const char *EscapingProgram = R"(
global g;
proc main {
  a = new h1;
  g = a;
  check(a);
}
)";

struct BrokenBackwardFixture {
  ir::Program P;
  escape::EscapeAnalysis A;
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> Fwd;
  ir::Trace T;
  std::vector<escape::EscapeAnalysis::State> States;
  formula::Dnf NotQ;

  BrokenBackwardFixture()
      : P(parse(EscapingProgram)), A(P), Fwd(P, A, A.paramFromBits({})) {
    Fwd.run(A.initialState());
    ir::CheckId Check(0);
    NotQ = A.notQ(Check);
    auto P0 = A.paramFromBits({});
    for (const auto &D : Fwd.statesAtCheck(Check)) {
      bool Fails = NotQ.eval(
          [&](AtomId At) { return A.evalAtom(At, P0, D); });
      if (!Fails)
        continue;
      auto Trace = Fwd.extractTrace(Check, D);
      EXPECT_TRUE(Trace.has_value());
      T = *Trace;
      States = Fwd.replay(T, A.initialState());
      break;
    }
    EXPECT_FALSE(States.empty()) << "expected a failing state to exist";
  }
};

TEST(BackwardAudit, RejectsWrongStateSequenceLength) {
  BrokenBackwardFixture F;
  support::InvariantSink Sink;
  meta::BackwardConfig Config;
  Config.Invariants = &Sink;
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(F.P, F.A, Config);
  std::vector<escape::EscapeAnalysis::State> Short = F.States;
  Short.pop_back(); // |States| must be |T| + 1
  auto Result = Bwd.run(F.T, F.A.paramFromBits({}), Short, F.NotQ);
  EXPECT_FALSE(Result.has_value());
  ASSERT_EQ(Sink.count(), 1u);
  EXPECT_EQ(Sink.snapshot()[0].Check, "backward-state-length");
}

TEST(BackwardAudit, RejectsTraceWhereNotQDoesNotHold) {
  BrokenBackwardFixture F;
  support::InvariantSink Sink;
  meta::BackwardConfig Config;
  Config.Invariants = &Sink;
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(F.P, F.A, Config);
  // `false` never holds at the end of any trace: the "this really is a
  // counterexample" precondition is violated.
  auto Result = Bwd.run(F.T, F.A.paramFromBits({}), F.States,
                        formula::Dnf::constFalse());
  EXPECT_FALSE(Result.has_value());
  ASSERT_EQ(Sink.count(), 1u);
  EXPECT_EQ(Sink.snapshot()[0].Check, "backward-notq-precondition");
}

TEST(BackwardAudit, HealthyRunReportsNothing) {
  BrokenBackwardFixture F;
  support::InvariantSink Sink;
  meta::BackwardConfig Config;
  Config.Invariants = &Sink;
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(F.P, F.A, Config);
  auto Result = Bwd.run(F.T, F.A.paramFromBits({}), F.States, F.NotQ);
  EXPECT_TRUE(Result.has_value());
  EXPECT_EQ(Sink.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Cnf::addClause hash-indexed deduplication
//===----------------------------------------------------------------------===//

TEST(CnfDedup, DropsDuplicatesKeepsDistinct) {
  tracer::Cnf F;
  F.addClause({{0, true}});
  F.addClause({{0, true}}); // exact duplicate
  F.addClause({{0, true}, {1, false}});
  F.addClause({{1, false}, {0, true}}); // same clause, different order
  F.addClause({{0, true}, {0, false}}); // tautology: dropped entirely
  EXPECT_EQ(F.size(), 2u);
}

TEST(CnfDedup, ScalesToManyDistinctClauses) {
  tracer::Cnf F;
  for (uint32_t V = 0; V < 500; ++V)
    F.addClause({{V, true}, {V + 1, false}});
  EXPECT_EQ(F.size(), 500u);
  // Re-adding the whole set changes nothing.
  for (uint32_t V = 0; V < 500; ++V)
    F.addClause({{V, true}, {V + 1, false}});
  EXPECT_EQ(F.size(), 500u);
}

TEST(CnfDedup, SignatureIsOrderIndependent) {
  tracer::Cnf A, B;
  A.addClause({{0, true}});
  A.addClause({{1, false}, {2, true}});
  B.addClause({{1, false}, {2, true}});
  B.addClause({{0, true}});
  EXPECT_EQ(A.signature(), B.signature());
  tracer::Cnf C;
  C.addClause({{0, true}});
  EXPECT_NE(A.signature(), C.signature());
}

//===----------------------------------------------------------------------===//
// Certificate checking
//===----------------------------------------------------------------------===//

struct DriverRun {
  synth::Benchmark B;
  escape::EscapeAnalysis A;
  tracer::QueryDriver<escape::EscapeAnalysis> Driver;
  std::vector<tracer::QueryOutcome> Outcomes;

  explicit DriverRun(tracer::TracerOptions Options = defaultOptions())
      : B(synth::generate(synth::paperSuite()[0])), A(B.P),
        Driver(B.P, A, Options) {
    Outcomes = Driver.run(B.EscChecks);
  }

  static tracer::TracerOptions defaultOptions() {
    tracer::TracerOptions Options;
    Options.MaxItersPerQuery = 32;
    return Options;
  }
};

TEST(Certificates, CleanRunValidates) {
  DriverRun R;
  EXPECT_TRUE(R.Driver.stats().Violations.empty());
  tracer::CertificateChecker<escape::EscapeAnalysis> Checker(R.B.P, R.A);
  tracer::CertificateReport Report =
      Checker.check(R.Outcomes, R.Driver.finalViableSets());
  EXPECT_TRUE(Report.ok()) << (Report.Issues.empty()
                                   ? ""
                                   : Report.Issues[0].Kind + ": " +
                                         Report.Issues[0].Detail);
  EXPECT_GT(Report.ProvenChecked, 0u);
  EXPECT_GT(Report.MinimalityChecked, 0u);
}

TEST(Certificates, DetectsTamperedCost) {
  DriverRun R;
  tracer::CertificateChecker<escape::EscapeAnalysis> Checker(R.B.P, R.A);
  std::vector<tracer::QueryOutcome> Tampered = R.Outcomes;
  bool DidTamper = false;
  for (auto &O : Tampered) {
    if (O.V == tracer::Verdict::Proven) {
      ++O.CheapestCost; // claim a cost the witness does not have
      DidTamper = true;
      break;
    }
  }
  ASSERT_TRUE(DidTamper) << "suite must prove at least one query";
  tracer::CertificateReport Report =
      Checker.check(Tampered, R.Driver.finalViableSets());
  EXPECT_FALSE(Report.ok());
  bool SawCostMismatch = false;
  for (const auto &Issue : Report.Issues)
    SawCostMismatch |= Issue.Kind == "cost-mismatch";
  EXPECT_TRUE(SawCostMismatch);
}

TEST(Certificates, DetectsMissingWitness) {
  DriverRun R;
  tracer::CertificateChecker<escape::EscapeAnalysis> Checker(R.B.P, R.A);
  std::vector<tracer::QueryOutcome> Tampered = R.Outcomes;
  bool DidTamper = false;
  for (auto &O : Tampered) {
    if (O.V == tracer::Verdict::Proven) {
      O.CheapestBits.clear();
      DidTamper = true;
      break;
    }
  }
  ASSERT_TRUE(DidTamper);
  tracer::CertificateReport Report =
      Checker.check(Tampered, R.Driver.finalViableSets());
  EXPECT_FALSE(Report.ok());
  EXPECT_EQ(Report.Issues[0].Kind, "missing-witness");
}

TEST(Certificates, DetectsForgedImpossibility) {
  DriverRun R;
  tracer::CertificateChecker<escape::EscapeAnalysis> Checker(R.B.P, R.A);
  std::vector<tracer::QueryOutcome> Tampered = R.Outcomes;
  bool DidTamper = false;
  for (auto &O : Tampered) {
    if (O.V == tracer::Verdict::Proven) {
      // The query was proven, so its viable set has a model; claiming
      // impossibility must be refuted by the solver replay.
      O.V = tracer::Verdict::Impossible;
      DidTamper = true;
      break;
    }
  }
  ASSERT_TRUE(DidTamper);
  tracer::CertificateReport Report =
      Checker.check(Tampered, R.Driver.finalViableSets());
  EXPECT_FALSE(Report.ok());
  bool SawRefuted = false;
  for (const auto &Issue : Report.Issues)
    SawRefuted |= Issue.Kind == "impossible-refuted";
  EXPECT_TRUE(SawRefuted);
}

//===----------------------------------------------------------------------===//
// JSONL event trace
//===----------------------------------------------------------------------===//

/// Minimal JSON value parser (objects, arrays, strings, numbers, bools):
/// enough to verify every emitted line is well-formed standalone JSON.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }
  bool object() {
    ++Pos; // {
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++Pos; // [
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '\\') {
        Pos += 2;
        continue;
      }
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // control characters must be escaped
      ++Pos;
    }
    return false;
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && (std::isdigit(S[Pos]) || S[Pos] == '.' ||
                              S[Pos] == 'e' || S[Pos] == 'E' ||
                              S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool literal(const char *L) {
    size_t N = std::string(L).size();
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t'))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

/// Extracts the value of a top-level "key":"value" string field.
std::string stringField(const std::string &Line, const std::string &Key) {
  std::string Needle = "\"" + Key + "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string::npos)
    return "";
  size_t Start = At + Needle.size();
  size_t End = Line.find('"', Start);
  return Line.substr(Start, End - Start);
}

TEST(EventTrace, JsonlParsesAndCarriesTheDocumentedEvents) {
  std::string Path = testing::TempDir() + "optabs_audit_event_trace.jsonl";
  { std::ofstream Truncate(Path, std::ios::trunc); }

  tracer::TracerOptions Options = DriverRun::defaultOptions();
  Options.EventTracePath = Path;
  Options.EventTraceLabel = "audit-test";
  DriverRun R(Options);

  std::ifstream In(Path);
  ASSERT_TRUE(In.is_open());
  std::set<std::string> Kinds;
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(JsonChecker(Line).valid()) << "bad JSON line: " << Line;
    EXPECT_EQ(stringField(Line, "label"), "audit-test");
    Kinds.insert(stringField(Line, "event"));
  }
  EXPECT_GT(Lines, 4u);
  for (const char *Kind : {"run_begin", "round_begin", "choose", "forward",
                           "step", "verdict", "round_end", "run_end"})
    EXPECT_TRUE(Kinds.count(Kind)) << "missing event kind " << Kind;
}

//===----------------------------------------------------------------------===//
// End-to-end audited integration run
//===----------------------------------------------------------------------===//

TEST(AuditMode, FullSmallSuiteIsCleanAtOneAndEightThreads) {
  for (unsigned Threads : {1u, 8u}) {
    reporting::HarnessOptions Options;
    Options.Cfg.Audit.Enabled = true;
    Options.Cfg.Execution.NumThreads = Threads;
    reporting::BenchRun Run =
        reporting::runBenchmark(synth::paperSuite()[0], Options);
    for (const reporting::ClientResults *R : {&Run.Esc, &Run.Ts}) {
      EXPECT_EQ(R->InvariantViolations, 0u) << "threads=" << Threads;
      EXPECT_EQ(R->CertificateFailures, 0u)
          << "threads=" << Threads
          << (R->AuditNotes.empty() ? "" : ": " + R->AuditNotes[0]);
      EXPECT_GT(R->CertificatesChecked, 0u) << "threads=" << Threads;
      EXPECT_TRUE(R->AuditNotes.empty());
    }
  }
}

} // namespace
