//===- DnfLawsTest.cpp - Algebraic laws of the DNF operators ------------------===//
//
// Property sweeps over randomly generated formulas validating the laws the
// meta-analysis relies on: simplify preserves meaning and is idempotent;
// dropk under-approximates while keeping the current point (the two
// conditions §4 requires of approx); soft-capped products under-
// approximate the true conjunction and are exact when under the cap.
//
//===----------------------------------------------------------------------===//

#include "formula/Dnf.h"

#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs::formula;
using optabs::Prng;

constexpr unsigned NumAtoms = 6;

Dnf randomDnf(Prng &Rng, unsigned MaxCubes) {
  std::vector<Cube> Cubes;
  unsigned N = 1 + Rng.nextBelow(MaxCubes);
  for (unsigned I = 0; I < N; ++I) {
    std::vector<Lit> Lits;
    unsigned Len = Rng.nextBelow(4);
    for (unsigned J = 0; J < Len; ++J) {
      AtomId A = static_cast<AtomId>(Rng.nextBelow(NumAtoms));
      Lits.push_back(Rng.chance(1, 3) ? Lit::neg(A) : Lit::pos(A));
    }
    if (auto C = Cube::make(std::move(Lits)))
      Cubes.push_back(std::move(*C));
  }
  return Dnf::fromCubes(std::move(Cubes));
}

AtomEval evalOfMask(unsigned Mask) {
  return [Mask](AtomId A) { return A < NumAtoms && ((Mask >> A) & 1); };
}

/// Parameterized over the PRNG seed: each instantiation sweeps a distinct
/// family of random formulas.
class DnfLaws : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DnfLaws, SimplifyPreservesMeaningAndIsIdempotent) {
  Prng Rng(GetParam());
  for (int Round = 0; Round < 100; ++Round) {
    Dnf D = randomDnf(Rng, 10);
    Dnf S = D;
    S.sortBySize();
    S.simplify();
    for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask)
      ASSERT_EQ(D.eval(evalOfMask(Mask)), S.eval(evalOfMask(Mask)));
    Dnf S2 = S;
    S2.sortBySize();
    S2.simplify();
    EXPECT_EQ(S2.size(), S.size());
  }
}

TEST_P(DnfLaws, DropKIsAnUnderApproximationKeepingTheWitness) {
  Prng Rng(GetParam() ^ 0xD20B);
  for (int Round = 0; Round < 100; ++Round) {
    Dnf D = randomDnf(Rng, 10);
    // Pick a witness mask that satisfies D (skip unsatisfiable rounds).
    std::optional<unsigned> Witness;
    for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask)
      if (D.eval(evalOfMask(Mask))) {
        Witness = Mask;
        break;
      }
    if (!Witness)
      continue;
    for (unsigned K : {1u, 2u, 3u}) {
      Dnf A = D;
      A.approx(K, evalOfMask(*Witness));
      EXPECT_LE(A.size(), K);
      // Condition 1: gamma(approx(f)) subseteq gamma(f).
      for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask) {
        if (A.eval(evalOfMask(Mask))) {
          ASSERT_TRUE(D.eval(evalOfMask(Mask)));
        }
      }
      // Condition 2: the witness is kept.
      EXPECT_TRUE(A.eval(evalOfMask(*Witness)));
    }
  }
}

TEST_P(DnfLaws, UncappedProductIsExactConjunction) {
  Prng Rng(GetParam() ^ 0xF00D);
  AtomEval Unused;
  for (int Round = 0; Round < 100; ++Round) {
    Dnf A = randomDnf(Rng, 6);
    Dnf B = randomDnf(Rng, 6);
    Dnf P = Dnf::product(A, B, 0, Unused);
    for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask) {
      AtomEval E = evalOfMask(Mask);
      ASSERT_EQ(P.eval(E), A.eval(E) && B.eval(E)) << "round " << Round;
    }
  }
}

TEST_P(DnfLaws, CappedProductUnderApproximatesAndKeepsJointWitness) {
  Prng Rng(GetParam() ^ 0xCA99);
  for (int Round = 0; Round < 100; ++Round) {
    Dnf A = randomDnf(Rng, 6);
    Dnf B = randomDnf(Rng, 6);
    // Find a mask satisfying both.
    std::optional<unsigned> Witness;
    for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask)
      if (A.eval(evalOfMask(Mask)) && B.eval(evalOfMask(Mask))) {
        Witness = Mask;
        break;
      }
    if (!Witness)
      continue;
    Dnf P = Dnf::product(A, B, /*SoftCap=*/2, evalOfMask(*Witness));
    for (unsigned Mask = 0; Mask < (1u << NumAtoms); ++Mask) {
      if (P.eval(evalOfMask(Mask))) {
        ASSERT_TRUE(A.eval(evalOfMask(Mask)) && B.eval(evalOfMask(Mask)));
      }
    }
    EXPECT_TRUE(P.eval(evalOfMask(*Witness)));
  }
}

TEST_P(DnfLaws, SortBySizeDeduplicates) {
  Prng Rng(GetParam() ^ 0x50F7);
  for (int Round = 0; Round < 50; ++Round) {
    Dnf D = randomDnf(Rng, 6);
    Dnf Doubled = D;
    Doubled.orWith(D);
    Doubled.sortBySize();
    Dnf Sorted = D;
    Sorted.sortBySize();
    EXPECT_EQ(Doubled.size(), Sorted.size());
  }
}

class CubeOrderingSweep : public ::testing::TestWithParam<uint64_t> {};

bool cubeIsCanonical(const Cube &C) {
  const Lit *B = C.literals().begin(), *E = C.literals().end();
  for (const Lit *P = B; P + 1 < E; ++P)
    if (!(P->raw() < (P + 1)->raw()))
      return false; // out of order or duplicate
  return true;
}

TEST(CubeOrdering, MakeCanonicalizesShuffledInput) {
  // Literals arrive reversed and with a duplicate; the cube must come out
  // sorted by raw value with the duplicate folded away.
  auto C = Cube::make({Lit::pos(AtomId(5)), Lit::neg(AtomId(2)),
                       Lit::pos(AtomId(0)), Lit::pos(AtomId(5))});
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->literals().size(), 3u);
  EXPECT_TRUE(cubeIsCanonical(*C));
}

TEST_P(CubeOrderingSweep, ConjoinAndProductKeepLiteralsSorted) {
  // The product fast path skips re-sorting because conjoin's merge
  // already emits literals in raw order; this pins that invariant so a
  // future conjoin change cannot silently break signature() and the
  // sorted-merge subsumption checks downstream.
  Prng Rng(GetParam() ^ 0x0D9E);
  AtomEval Unused;
  for (int Round = 0; Round < 200; ++Round) {
    Dnf A = randomDnf(Rng, 6);
    Dnf B = randomDnf(Rng, 6);
    for (const Cube &C : A.cubes())
      ASSERT_TRUE(cubeIsCanonical(C));
    std::optional<Cube> Joined;
    if (!A.cubes().empty() && !B.cubes().empty())
      Joined = Cube::conjoin(A.cubes().front(), B.cubes().front());
    if (Joined) {
      ASSERT_TRUE(cubeIsCanonical(*Joined));
    }
    Dnf P = Dnf::product(A, B, 0, Unused);
    for (const Cube &C : P.cubes())
      ASSERT_TRUE(cubeIsCanonical(C)) << "round " << Round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfLaws,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));
INSTANTIATE_TEST_SUITE_P(Seeds, CubeOrderingSweep,
                         ::testing::Values(1ull, 2ull, 3ull));

} // namespace
