//===- LivenessTest.cpp - Unit tests for per-command live-variable sets -------===//
//
// Pins the use/def table and the statement-DAG fixpoint of
// ir/Liveness.h on hand-checkable programs: straight-line kills, loop
// back-edge feedback, escape-capable stores defining nothing, and
// liveness flowing through procedure calls. The end-to-end guarantee -
// pruning dead variables never changes a verdict - is covered by the
// driver tests; these pin the sets themselves.
//
//===----------------------------------------------------------------------===//

#include "ir/Liveness.h"

#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

bool liveAfter(const Program &P, const CommandLiveness &L, unsigned Cmd,
               const char *Var) {
  VarId V = P.findVar(Var);
  EXPECT_TRUE(V.isValid()) << Var;
  return L.liveOut(CommandId(Cmd)).test(V.index());
}

TEST(Liveness, CoversEveryCommand) {
  Program P = parse(R"(
    proc main { x = new h1; check(x); }
  )");
  CommandLiveness L(P);
  EXPECT_EQ(L.numCommands(), P.numCommands());
}

TEST(Liveness, DeadAfterLastUse) {
  Program P = parse(R"(
    proc main { x = new h1; y = new h2; check(y); }
  )");
  CommandLiveness L(P);
  // x is never read: dead already at its own definition.
  EXPECT_FALSE(liveAfter(P, L, 0, "x"));
  // y is read by the check, then nothing.
  EXPECT_TRUE(liveAfter(P, L, 1, "y"));
  EXPECT_FALSE(liveAfter(P, L, 2, "y"));
}

TEST(Liveness, LoopBackEdgeKeepsNextIterationUsesAlive) {
  Program P = parse(R"(
    proc main {
      y = null;
      loop { z = y; y = new h1; }
      check(z);
    }
  )");
  CommandLiveness L(P);
  // Commands in source order: 0 y=null, 1 z=y, 2 y=new, 3 check(z).
  // After y=new inside the loop, y feeds the next iteration's z=y and z
  // survives to the check behind the loop.
  EXPECT_TRUE(liveAfter(P, L, 2, "y"));
  EXPECT_TRUE(liveAfter(P, L, 2, "z"));
  // Before the loop, both the body's read of y and the zero-iteration
  // path to check(z) are live.
  EXPECT_TRUE(liveAfter(P, L, 0, "y"));
  EXPECT_TRUE(liveAfter(P, L, 0, "z"));
  // Behind the check nothing is read again.
  EXPECT_FALSE(liveAfter(P, L, 3, "z"));
}

TEST(Liveness, StoreGlobalUsesSourceAndDefinesNothing) {
  Program P = parse(R"(
    global g;
    proc main { x = new h1; g = x; y = g; check(y); }
  )");
  CommandLiveness L(P);
  // x must stay live up to the store that publishes it...
  EXPECT_TRUE(liveAfter(P, L, 0, "x"));
  // ...and is dead afterwards; the load reads the global, not x.
  EXPECT_FALSE(liveAfter(P, L, 1, "x"));
  EXPECT_TRUE(liveAfter(P, L, 2, "y"));
}

TEST(Liveness, FieldAndMethodCommandsUseTheirOperands) {
  Program P = parse(R"(
    proc main { x = new h1; w = new h2; x.f = w; x.m(); }
  )");
  CommandLiveness L(P);
  // The store-field reads both the base and the source; the method call
  // reads its receiver.
  EXPECT_TRUE(liveAfter(P, L, 0, "x"));
  EXPECT_TRUE(liveAfter(P, L, 1, "x"));
  EXPECT_TRUE(liveAfter(P, L, 1, "w"));
  EXPECT_TRUE(liveAfter(P, L, 2, "x"));
  EXPECT_FALSE(liveAfter(P, L, 3, "x"));
}

TEST(Liveness, InvokePropagatesCalleeUsesToCallSite) {
  Program P = parse(R"(
    proc main { x = new h1; call f; x = new h2; }
    proc f { check(x); }
  )");
  CommandLiveness L(P);
  // Commands: 0 x=new h1 (main), 1 invoke f, 2 x=new h2 (main),
  // 3 check(x) (f). The callee's read keeps x live across the call...
  EXPECT_TRUE(liveAfter(P, L, 0, "x"));
  // ...and the redefinition after the call ends its range: the second
  // value is never read anywhere.
  EXPECT_FALSE(liveAfter(P, L, 2, "x"));
  EXPECT_FALSE(liveAfter(P, L, 3, "x"));
}

} // namespace
