//===- TracerTest.cpp - End-to-end tests for the TRACER algorithm ------------===//
//
// Reproduces the paper's two worked examples exactly (Figure 1 for
// type-state, Figure 6 for thread-escape) and cross-checks TRACER's
// optimum-abstraction answers against brute-force enumeration of the whole
// abstraction family on randomly generated small programs.
//
//===----------------------------------------------------------------------===//

#include "tracer/QueryDriver.h"

#include "escape/Escape.h"
#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "support/Prng.h"
#include "typestate/Typestate.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs;
using namespace optabs::ir;
using optabs::tracer::QueryDriver;
using optabs::tracer::QueryOutcome;
using optabs::tracer::TracerOptions;
using optabs::tracer::Verdict;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// True if the p-instantiated forward analysis proves the query: no state
/// reaching the check satisfies not(q).
template <typename Analysis>
bool proves(const Program &P, const Analysis &A,
            const typename Analysis::Param &Prm, CheckId Check) {
  dataflow::ForwardAnalysis<Analysis> FA(P, A, Prm);
  FA.run(A.initialState());
  formula::Dnf NotQ = A.notQ(Check);
  for (const auto &D : FA.statesAtCheck(Check)) {
    if (NotQ.eval([&](formula::AtomId At) { return A.evalAtom(At, Prm, D); }))
      return false;
  }
  return true;
}

/// Brute-forces the optimum abstraction problem: returns the minimum cost
/// of a proving abstraction, or -1 if none proves the query.
template <typename Analysis>
int bruteForceOptimum(const Program &P, const Analysis &A, CheckId Check) {
  uint32_t N = A.numParamBits();
  EXPECT_LE(N, 16u) << "brute force only feasible for small families";
  int Best = -1;
  for (uint32_t Mask = 0; Mask < (1u << N); ++Mask) {
    std::vector<bool> Bits(N);
    int Cost = 0;
    for (uint32_t I = 0; I < N; ++I) {
      Bits[I] = (Mask >> I) & 1;
      Cost += Bits[I];
    }
    if (Best >= 0 && Cost >= Best)
      continue;
    if (proves(P, A, A.paramFromBits(Bits), Check))
      Best = Cost;
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Figure 1: type-state
//===----------------------------------------------------------------------===//

struct Fig1 {
  Program P;
  std::unique_ptr<typestate::TypestateSpec> Spec;
  std::unique_ptr<pointer::PointsToResult> Pt;
  std::unique_ptr<typestate::TypestateAnalysis> A;

  Fig1() {
    P = parse(R"(
      proc main {
        x = new h1;
        y = x;
        if { z = x; }
        x.open();
        y.close();
        choice { check(x, closed); } or { check(x, opened); }
      }
    )");
    Spec = std::make_unique<typestate::TypestateSpec>("closed");
    uint32_t Opened = Spec->addState("opened");
    MethodId Open = P.makeMethod("open");
    MethodId Close = P.makeMethod("close");
    Spec->addTransition(Open, 0, Opened);
    Spec->addErrorTransition(Open, Opened);
    Spec->addTransition(Close, Opened, 0);
    Spec->addErrorTransition(Close, 0);
    Pt = std::make_unique<pointer::PointsToResult>(pointer::runPointsTo(P));
    A = std::make_unique<typestate::TypestateAnalysis>(
        P, *Spec, P.findAlloc("h1"), *Pt);
  }
};

TEST(TracerFig1, Check1ProvenWithXY) {
  Fig1 F;
  TracerOptions Options;
  Options.K = 1; // the paper's walkthrough uses k = 1
  QueryDriver<typestate::TypestateAnalysis> Driver(F.P, *F.A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  EXPECT_EQ(Outcomes[0].CheapestCost, 2u);
  EXPECT_EQ(Outcomes[0].CheapestParam, "{x,y}");
  // Iteration 1: p = {}; iteration 2: p = {x}; iteration 3: p = {x,y}.
  EXPECT_EQ(Outcomes[0].Iterations, 3u);
}

TEST(TracerFig1, Check2Impossible) {
  Fig1 F;
  TracerOptions Options;
  Options.K = 1;
  QueryDriver<typestate::TypestateAnalysis> Driver(F.P, *F.A, Options);
  auto Outcomes = Driver.run({CheckId(1)});
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].V, Verdict::Impossible);
  // Iteration 1 eliminates all p without x; iteration 2 all p with x.
  EXPECT_EQ(Outcomes[0].Iterations, 2u);
}

TEST(TracerFig1, BothQueriesTogetherAndBruteForceAgrees) {
  Fig1 F;
  QueryDriver<typestate::TypestateAnalysis> Driver(F.P, *F.A);
  auto Outcomes = Driver.run({CheckId(0), CheckId(1)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  EXPECT_EQ(Outcomes[1].V, Verdict::Impossible);
  EXPECT_EQ(bruteForceOptimum(F.P, *F.A, CheckId(0)), 2);
  EXPECT_EQ(bruteForceOptimum(F.P, *F.A, CheckId(1)), -1);
}

TEST(TracerFig1, IrrelevantVariableNeverTracked) {
  // The paper: even with "if (*) z = x", z is never added to the
  // abstraction; the cheapest proving abstraction stays {x, y}.
  Fig1 F;
  QueryDriver<typestate::TypestateAnalysis> Driver(F.P, *F.A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].CheapestParam, "{x,y}");
}

//===----------------------------------------------------------------------===//
// Figure 6: thread-escape
//===----------------------------------------------------------------------===//

TEST(TracerFig6, CheapestIsBothSitesLocal) {
  Program P = parse(R"(
    proc main {
      u = new h1;
      v = new h2;
      v.f = u;
      check(u);
    }
  )");
  escape::EscapeAnalysis A(P);

  // k = 1 (Figure 6 (b1)/(b2)): three iterations, [], [h1], [h1,h2].
  TracerOptions K1;
  K1.K = 1;
  QueryDriver<escape::EscapeAnalysis> D1(P, A, K1);
  auto O1 = D1.run({CheckId(0)});
  EXPECT_EQ(O1[0].V, Verdict::Proven);
  EXPECT_EQ(O1[0].CheapestCost, 2u);
  EXPECT_EQ(O1[0].CheapestParam, "[L:h1,h2]");
  EXPECT_EQ(O1[0].Iterations, 3u);

  // Without under-approximation (Figure 6 (a)): a single failing iteration
  // suffices to learn h1.E \/ (h2.E /\ h1.L); two iterations total.
  TracerOptions Exact;
  Exact.K = 0;
  QueryDriver<escape::EscapeAnalysis> D0(P, A, Exact);
  auto O0 = D0.run({CheckId(0)});
  EXPECT_EQ(O0[0].V, Verdict::Proven);
  EXPECT_EQ(O0[0].CheapestCost, 2u);
  EXPECT_EQ(O0[0].Iterations, 2u);

  EXPECT_EQ(bruteForceOptimum(P, A, CheckId(0)), 2);
}

TEST(TracerEscape, EscapedQueryIsImpossible) {
  Program P = parse(R"(
    global g;
    proc main {
      u = new h1;
      g = u;
      check(u);
    }
  )");
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Impossible);
  EXPECT_EQ(bruteForceOptimum(P, A, CheckId(0)), -1);
}

TEST(TracerEscape, LaunderedEscapeThroughHeap) {
  Program P = parse(R"(
    global g;
    proc main {
      u = new h1;
      w = new h2;
      w.f = u;
      g = w;
      check(u);
    }
  )");
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Impossible);
  EXPECT_EQ(bruteForceOptimum(P, A, CheckId(0)), -1);
}

TEST(TracerEscape, UnreachedCheckIsTriviallyProven) {
  Program P = parse(R"(
    proc main { u = new h1; call f; }
    proc f { }
    proc dead { check(u); }
  )");
  // Make "dead" referenced so the parser accepts it but keep it unreached.
  // (The parser requires referenced procs to be defined, not defined procs
  // to be referenced, so this parses as-is.)
  escape::EscapeAnalysis A(P);
  QueryDriver<escape::EscapeAnalysis> Driver(P, A);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Proven);
  EXPECT_EQ(Outcomes[0].CheapestCost, 0u);
  EXPECT_EQ(Outcomes[0].Iterations, 1u);
}

TEST(TracerEscape, BudgetExhaustionYieldsUnresolved) {
  Program P = parse(R"(
    proc main {
      u = new h1;
      v = new h2;
      v.f = u;
      check(u);
    }
  )");
  escape::EscapeAnalysis A(P);
  TracerOptions Options;
  Options.K = 1;
  Options.MaxItersPerQuery = 2; // needs 3
  QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
  auto Outcomes = Driver.run({CheckId(0)});
  EXPECT_EQ(Outcomes[0].V, Verdict::Unresolved);
  EXPECT_EQ(Outcomes[0].Iterations, 2u);
}

TEST(TracerEscape, GroupingSharesForwardRuns) {
  // Two identical independent queries: with grouping they share every
  // forward run.
  Program P = parse(R"(
    proc main {
      u = new h1;
      v = new h2;
      v.f = u;
      check(u);
      check(u);
    }
  )");
  escape::EscapeAnalysis A(P);

  TracerOptions Grouped;
  Grouped.K = 1;
  QueryDriver<escape::EscapeAnalysis> DG(P, A, Grouped);
  auto OG = DG.run({CheckId(0), CheckId(1)});
  EXPECT_EQ(OG[0].V, Verdict::Proven);
  EXPECT_EQ(OG[1].V, Verdict::Proven);
  EXPECT_EQ(DG.stats().ForwardRuns, 3u);

  TracerOptions Ungrouped = Grouped;
  Ungrouped.GroupQueries = false;
  QueryDriver<escape::EscapeAnalysis> DU(P, A, Ungrouped);
  auto OU = DU.run({CheckId(0), CheckId(1)});
  EXPECT_EQ(OU[0].V, Verdict::Proven);
  // Same abstractions still shared within a round, so equal here; the
  // point is that grouping never does more runs.
  EXPECT_LE(DG.stats().ForwardRuns, DU.stats().ForwardRuns);
}

//===----------------------------------------------------------------------===//
// Optimality property: TRACER vs brute force on random small programs
//===----------------------------------------------------------------------===//

/// Generates a small random escape-analysis program with NumSites sites and
/// a final check on a random variable.
std::string randomEscapeProgram(Prng &Rng) {
  const char *Vars[] = {"a", "b", "c"};
  const char *Sites[] = {"h1", "h2", "h3"};
  const char *Fields[] = {"f", "k"};
  std::string Src = "global g;\nproc main {\n";
  Src += "  a = new h1;\n  b = new h2;\n  c = null;\n";
  unsigned Len = 3 + Rng.nextBelow(8);
  for (unsigned I = 0; I < Len; ++I) {
    std::string V = Vars[Rng.nextBelow(3)];
    std::string W = Vars[Rng.nextBelow(3)];
    std::string Line;
    switch (Rng.nextBelow(8)) {
    case 0:
      Line = V + " = new " + Sites[Rng.nextBelow(3)] + ";";
      break;
    case 1:
      Line = V + " = " + W + ";";
      break;
    case 2:
      Line = V + " = null;";
      break;
    case 3:
      Line = "g = " + V + ";";
      break;
    case 4:
      Line = V + " = g;";
      break;
    case 5:
      Line = V + " = " + W + "." + Fields[Rng.nextBelow(2)] + ";";
      break;
    case 6:
      Line = V + "." + Fields[Rng.nextBelow(2)] + " = " + W + ";";
      break;
    default:
      Line = "choice { " + V + " = " + W + "; } or { " + V + " = null; }";
      break;
    }
    Src += "  " + Line + "\n";
  }
  Src += std::string("  check(") + Vars[Rng.nextBelow(3)] + ");\n}\n";
  return Src;
}

TEST(TracerOptimality, EscapeMatchesBruteForceOnRandomPrograms) {
  Prng Rng(0x0B5E55ED);
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomEscapeProgram(Rng);
    Program P = parse(Src.c_str());
    escape::EscapeAnalysis A(P);
    int Brute = bruteForceOptimum(P, A, CheckId(0));

    for (unsigned K : {0u, 1u, 5u}) {
      TracerOptions Options;
      Options.K = K;
      QueryDriver<escape::EscapeAnalysis> Driver(P, A, Options);
      auto Outcomes = Driver.run({CheckId(0)});
      if (Brute < 0) {
        EXPECT_EQ(Outcomes[0].V, Verdict::Impossible)
            << "k=" << K << "\n" << Src;
      } else {
        ASSERT_EQ(Outcomes[0].V, Verdict::Proven)
            << "k=" << K << "\n" << Src;
        EXPECT_EQ(static_cast<int>(Outcomes[0].CheapestCost), Brute)
            << "k=" << K << "\n" << Src;
      }
    }
  }
}

/// Random type-state programs over the File automaton.
std::string randomTypestateProgram(Prng &Rng) {
  const char *Vars[] = {"a", "b", "c", "d"};
  std::string Src = "proc main {\n  a = new h1;\n";
  unsigned Len = 2 + Rng.nextBelow(8);
  for (unsigned I = 0; I < Len; ++I) {
    std::string V = Vars[Rng.nextBelow(4)];
    std::string W = Vars[Rng.nextBelow(4)];
    std::string Line;
    switch (Rng.nextBelow(6)) {
    case 0:
      Line = V + " = " + W + ";";
      break;
    case 1:
      Line = V + " = null;";
      break;
    case 2:
      Line = V + ".open();";
      break;
    case 3:
      Line = V + ".close();";
      break;
    case 4:
      Line = V + " = new h1;";
      break;
    default:
      Line = "if { " + V + " = " + W + "; }";
      break;
    }
    Src += "  " + Line + "\n";
  }
  Src += "  check(a, closed);\n}\n";
  return Src;
}

TEST(TracerOptimality, TypestateMatchesBruteForceOnRandomPrograms) {
  Prng Rng(0x7E57);
  for (int Round = 0; Round < 60; ++Round) {
    std::string Src = randomTypestateProgram(Rng);
    Program P = parse(Src.c_str());
    typestate::TypestateSpec Spec("closed");
    uint32_t Opened = Spec.addState("opened");
    MethodId Open = P.makeMethod("open");
    MethodId Close = P.makeMethod("close");
    Spec.addTransition(Open, 0, Opened);
    Spec.addErrorTransition(Open, Opened);
    Spec.addTransition(Close, Opened, 0);
    Spec.addErrorTransition(Close, 0);
    auto Pt = pointer::runPointsTo(P);
    typestate::TypestateAnalysis A(P, Spec, P.findAlloc("h1"), Pt);
    int Brute = bruteForceOptimum(P, A, CheckId(0));

    for (unsigned K : {0u, 1u, 5u}) {
      TracerOptions Options;
      Options.K = K;
      QueryDriver<typestate::TypestateAnalysis> Driver(P, A, Options);
      auto Outcomes = Driver.run({CheckId(0)});
      if (Brute < 0) {
        EXPECT_EQ(Outcomes[0].V, Verdict::Impossible)
            << "k=" << K << "\n" << Src;
      } else {
        ASSERT_EQ(Outcomes[0].V, Verdict::Proven)
            << "k=" << K << "\n" << Src;
        EXPECT_EQ(static_cast<int>(Outcomes[0].CheapestCost), Brute)
            << "k=" << K << "\n" << Src;
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Grouped multi-query runs must agree with independent per-query runs
//===----------------------------------------------------------------------===//

namespace {

TEST(TracerGrouping, BatchedVerdictsMatchIndependentRuns) {
  Prng Rng(0x6A0B);
  for (int Round = 0; Round < 25; ++Round) {
    // Random program with several checks sprinkled through it.
    std::string Src = randomEscapeProgram(Rng);
    Src.insert(Src.rfind("}"), "  check(b);\n  check(c);\n");
    Program P = parse(Src.c_str());
    escape::EscapeAnalysis A(P);
    std::vector<CheckId> Queries;
    for (uint32_t I = 0; I < P.numChecks(); ++I)
      Queries.push_back(CheckId(I));

    tracer::TracerOptions Options;
    QueryDriver<escape::EscapeAnalysis> Batched(P, A, Options);
    auto Together = Batched.run(Queries);

    for (size_t I = 0; I < Queries.size(); ++I) {
      QueryDriver<escape::EscapeAnalysis> Single(P, A, Options);
      auto Alone = Single.run({Queries[I]});
      EXPECT_EQ(Together[I].V, Alone[0].V) << Src;
      if (Together[I].V == Verdict::Proven) {
        // Both must be minimum-cost (possibly different minima).
        EXPECT_EQ(Together[I].CheapestCost, Alone[0].CheapestCost) << Src;
      }
    }
  }
}

} // namespace
