//===- TypestateTest.cpp - Unit tests for the type-state client --------------===//

#include "typestate/Typestate.h"

#include "ir/Parser.h"
#include "pointer/PointsTo.h"
#include "support/Prng.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs::ir;
using namespace optabs::typestate;
using optabs::BitSet;
using optabs::Prng;
using optabs::formula::AtomId;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

/// The File property of Figure 1: closed (init) <-> opened; open() on
/// opened and close() on closed are errors.
TypestateSpec fileSpec(Program &P) {
  TypestateSpec Spec("closed");
  uint32_t Closed = 0;
  uint32_t Opened = Spec.addState("opened");
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  Spec.addTransition(Open, Closed, Opened);
  Spec.addErrorTransition(Open, Opened);
  Spec.addTransition(Close, Opened, Closed);
  Spec.addErrorTransition(Close, Closed);
  return Spec;
}

TsParam paramOf(const Program &P, std::initializer_list<const char *> Vars) {
  TsParam Prm;
  Prm.Tracked = BitSet(P.numVars());
  for (const char *Name : Vars) {
    VarId V = P.findVar(Name);
    EXPECT_TRUE(V.isValid()) << Name;
    Prm.Tracked.set(V.index());
  }
  return Prm;
}

struct Fixture {
  Program P;
  std::unique_ptr<TypestateSpec> Spec;
  std::unique_ptr<optabs::pointer::PointsToResult> Pt;
  std::unique_ptr<TypestateAnalysis> A;

  explicit Fixture(const char *Src, bool Stress = false) {
    P = parse(Src);
    Spec = std::make_unique<TypestateSpec>(
        Stress ? TypestateSpec::stress() : fileSpec(P));
    Pt = std::make_unique<optabs::pointer::PointsToResult>(
        optabs::pointer::runPointsTo(P));
    A = std::make_unique<TypestateAnalysis>(P, *Spec, P.findAlloc("h1"),
                                            *Pt);
  }

  const Command &cmd(uint32_t I) const { return P.command(CommandId(I)); }
};

const char *Fig1Src = R"(
  proc main {
    x = new h1;
    y = x;
    if { z = x; }
    x.open();
    y.close();
    choice { check(x, closed); } or { check(x, opened); }
  }
)";

TEST(TypestateSpec, AutomatonLookup) {
  Program P;
  TypestateSpec Spec = fileSpec(P);
  MethodId Open = P.makeMethod("open");
  MethodId Close = P.makeMethod("close");
  EXPECT_EQ(Spec.apply(Open, 0), std::optional<uint32_t>(1));
  EXPECT_EQ(Spec.apply(Open, 1), std::nullopt);
  EXPECT_EQ(Spec.apply(Close, 1), std::optional<uint32_t>(0));
  EXPECT_EQ(Spec.apply(Close, 0), std::nullopt);
  // Unknown methods keep the state.
  MethodId Other = P.makeMethod("read");
  EXPECT_EQ(Spec.apply(Other, 0), std::optional<uint32_t>(0));
  EXPECT_EQ(Spec.findState("opened"), std::optional<uint32_t>(1));
  EXPECT_FALSE(Spec.findState("nope").has_value());
}

TEST(Typestate, TransferFollowsFigure4) {
  Fixture F(Fig1Src);
  TsParam Full = paramOf(F.P, {"x", "y", "z"});
  AbsState D = F.A->initialState();
  EXPECT_EQ(D.Ts, 1u);
  EXPECT_TRUE(D.Vs.empty());

  // x = new h1: vs = {x} (tracked by p).
  D = F.A->transfer(F.cmd(0), D, Full);
  EXPECT_EQ(D.Vs.size(), 1u);
  // y = x: vs = {x, y}.
  D = F.A->transfer(F.cmd(1), D, Full);
  EXPECT_EQ(D.Vs.size(), 2u);
  // x.open(): strong update, ts = {opened}.
  AbsState AfterOpen = F.A->transfer(F.cmd(3), D, Full);
  EXPECT_EQ(AfterOpen.Ts, 2u);
  EXPECT_FALSE(AfterOpen.Top);
  // y.close() on opened: back to closed.
  AbsState AfterClose = F.A->transfer(F.cmd(4), AfterOpen, Full);
  EXPECT_EQ(AfterClose.Ts, 1u);
  // y.close() on closed: error.
  AbsState Err = F.A->transfer(F.cmd(4), AfterClose, Full);
  EXPECT_TRUE(Err.Top);
  // TOP is absorbing.
  EXPECT_TRUE(F.A->transfer(F.cmd(0), Err, Full).Top);
}

TEST(Typestate, WeakUpdateWithoutMustAlias) {
  Fixture F(Fig1Src);
  TsParam Empty = paramOf(F.P, {});
  AbsState D = F.A->initialState();
  D = F.A->transfer(F.cmd(0), D, Empty); // x = new h1, x untracked
  EXPECT_TRUE(D.Vs.empty());
  // x.open() with x not in vs: weak update keeps closed and adds opened.
  AbsState After = F.A->transfer(F.cmd(3), D, Empty);
  EXPECT_EQ(After.Ts, 3u);
  // y.close() now errs: closed in ts and [close](closed) = TOP.
  EXPECT_TRUE(F.A->transfer(F.cmd(4), After, Empty).Top);
}

TEST(Typestate, CallOnUnrelatedReceiverIsIdentity) {
  Fixture F(R"(
    proc main {
      x = new h1;
      w = new h2;
      w.open();
      check(x, closed);
    }
  )");
  TsParam Full = paramOf(F.P, {"x", "w"});
  AbsState D = F.A->initialState();
  D = F.A->transfer(F.cmd(0), D, Full);
  // w.open(): w cannot point to h1, so the tracked object is unaffected.
  AbsState After = F.A->transfer(F.cmd(2), D, Full);
  EXPECT_EQ(After, D);
}

TEST(Typestate, UntrackedAllocationDropsMustAlias) {
  Fixture F(R"(
    proc main { x = new h1; x = new h2; check(x, closed); }
  )");
  TsParam Full = paramOf(F.P, {"x"});
  AbsState D = F.A->initialState();
  D = F.A->transfer(F.cmd(0), D, Full);
  EXPECT_EQ(D.Vs.size(), 1u);
  D = F.A->transfer(F.cmd(1), D, Full);
  EXPECT_TRUE(D.Vs.empty());
}

TEST(Typestate, StressModeErrsExactlyOnWeakCalls) {
  Fixture F(R"(
    proc main { x = new h1; y = x; y.work(); check(x, init); }
  )", /*Stress=*/true);
  TsParam Both = paramOf(F.P, {"x", "y"});
  TsParam JustX = paramOf(F.P, {"x"});
  AbsState D0 = F.A->initialState();
  AbsState D1 = F.A->transfer(F.cmd(0), D0, Both);
  AbsState D2 = F.A->transfer(F.cmd(1), D1, Both);
  EXPECT_FALSE(F.A->transfer(F.cmd(2), D2, Both).Top); // y in vs: precise
  AbsState E1 = F.A->transfer(F.cmd(0), D0, JustX);
  AbsState E2 = F.A->transfer(F.cmd(1), E1, JustX);
  EXPECT_TRUE(F.A->transfer(F.cmd(2), E2, JustX).Top); // weak: errs
}

//===----------------------------------------------------------------------===//
// Requirement (2) of the framework: gamma(wp(A)) = {(p,d) | A(p, [a]_p(d))},
// checked by property testing over random states, abstractions, commands.
//===----------------------------------------------------------------------===//

AbsState randomState(Prng &Rng, uint32_t NumVars, uint32_t NumTs) {
  AbsState D;
  if (Rng.chance(1, 8)) {
    D.Top = true;
    return D;
  }
  D.Ts = static_cast<uint32_t>(Rng.nextBelow(1u << NumTs));
  if (D.Ts == 0)
    D.Ts = 1;
  for (uint32_t V = 0; V < NumVars; ++V)
    if (Rng.chance(1, 3))
      D.Vs.push_back(V);
  return D;
}

void wpSoundnessProperty(const char *Src, bool Stress) {
  Fixture F(Src, Stress);
  Prng Rng(Stress ? 0xBEEF : 0xFEED);
  uint32_t NumTs = F.Spec->numStates();

  // All atoms of the domain (Figure 9).
  std::vector<AtomId> Atoms;
  Atoms.push_back(TypestateAnalysis::atomErr());
  for (uint32_t V = 0; V < F.P.numVars(); ++V) {
    Atoms.push_back(TypestateAnalysis::atomParam(VarId(V)));
    Atoms.push_back(TypestateAnalysis::atomVar(VarId(V)));
  }
  for (uint32_t S = 0; S < NumTs; ++S)
    Atoms.push_back(TypestateAnalysis::atomType(S));

  for (int Round = 0; Round < 300; ++Round) {
    TsParam Prm;
    Prm.Tracked = BitSet(F.P.numVars());
    for (uint32_t V = 0; V < F.P.numVars(); ++V)
      if (Rng.chance(1, 2))
        Prm.Tracked.set(V);
    AbsState D = randomState(Rng, F.P.numVars(), NumTs);
    for (uint32_t CI = 0; CI < F.P.numCommands(); ++CI) {
      const Command &Cmd = F.P.command(CommandId(CI));
      if (Cmd.Kind == CmdKind::Invoke)
        continue;
      AbsState Post = F.A->transfer(Cmd, D, Prm);
      for (AtomId A : Atoms) {
        bool PostHolds = F.A->evalAtom(A, Prm, Post);
        bool WpHolds = F.A->wpAtom(Cmd, A).eval([&](AtomId B) {
          return F.A->evalAtom(B, Prm, D);
        });
        ASSERT_EQ(WpHolds, PostHolds)
            << "cmd " << CI << " atom " << F.A->atomName(A) << " round "
            << Round;
      }
    }
  }
}

TEST(TypestateWp, SoundAndCompleteForAutomaton) {
  wpSoundnessProperty(R"(
    global g;
    proc main {
      x = new h1;
      w = new h2;
      y = x;
      y = null;
      y = g;
      y = x.f;
      x.f = y;
      g = x;
      x.open();
      y.close();
      w.open();
      assume(*);
      check(x, closed);
    }
  )", /*Stress=*/false);
}

TEST(TypestateWp, SoundAndCompleteForStress) {
  wpSoundnessProperty(R"(
    global g;
    proc main {
      x = new h1;
      w = new h2;
      y = x;
      y = null;
      y = g;
      y = x.f;
      x.f = y;
      x.work();
      y.work();
      w.work();
      check(x, init);
    }
  )", /*Stress=*/true);
}

TEST(Typestate, NotQForAutomatonChecks) {
  Fixture F(Fig1Src);
  // check(x, closed): err \/ type(opened)
  auto D0 = F.A->notQ(CheckId(0));
  EXPECT_EQ(D0.size(), 2u);
  AbsState Closed = F.A->initialState();
  TsParam Empty = paramOf(F.P, {});
  auto Eval = [&](const AbsState &D) {
    return [&, D](AtomId A) { return F.A->evalAtom(A, Empty, D); };
  };
  EXPECT_FALSE(D0.eval(Eval(Closed)));
  AbsState Opened = Closed;
  Opened.Ts = 2;
  EXPECT_TRUE(D0.eval(Eval(Opened)));
  AbsState Top;
  Top.Top = true;
  EXPECT_TRUE(D0.eval(Eval(Top)));
}

TEST(Typestate, ParamCodec) {
  Fixture F(Fig1Src);
  EXPECT_EQ(F.A->numParamBits(), F.P.numVars());
  VarId X = F.P.findVar("x");
  auto [Bit, Val] = F.A->decodeParamAtom(TypestateAnalysis::atomParam(X));
  EXPECT_EQ(Bit, X.index());
  EXPECT_TRUE(Val);
  std::vector<bool> Bits(F.P.numVars(), false);
  Bits[X.index()] = true;
  TsParam Prm = F.A->paramFromBits(Bits);
  EXPECT_EQ(F.A->paramCost(Prm), 1u);
  EXPECT_EQ(F.A->paramToString(Prm), "{x}");
}

TEST(Typestate, AtomNames) {
  Fixture F(Fig1Src);
  EXPECT_EQ(F.A->atomName(TypestateAnalysis::atomErr()), "err");
  EXPECT_EQ(F.A->atomName(TypestateAnalysis::atomType(0)), "type(closed)");
  EXPECT_EQ(F.A->atomName(TypestateAnalysis::atomType(1)), "type(opened)");
  VarId X = F.P.findVar("x");
  EXPECT_EQ(F.A->atomName(TypestateAnalysis::atomParam(X)), "param(x)");
  EXPECT_EQ(F.A->atomName(TypestateAnalysis::atomVar(X)), "var(x)");
}

} // namespace
