//===- PointsToTest.cpp - Unit tests for the may-points-to substrate ---------===//

#include "pointer/PointsTo.h"

#include "ir/Parser.h"

#include "gtest/gtest.h"

namespace {

using namespace optabs::ir;
using optabs::pointer::runPointsTo;

Program parse(const char *Src) {
  Program P;
  std::string Error;
  bool Ok = parseProgram(Src, P, Error);
  EXPECT_TRUE(Ok) << Error;
  return P;
}

TEST(PointsTo, DirectAllocationAndCopy) {
  Program P = parse(R"(
    proc main {
      x = new h1;
      y = x;
      z = new h2;
    }
  )");
  auto R = runPointsTo(P);
  VarId X = P.findVar("x"), Y = P.findVar("y"), Z = P.findVar("z");
  AllocId H1 = P.findAlloc("h1"), H2 = P.findAlloc("h2");
  EXPECT_TRUE(R.mayPoint(X, H1));
  EXPECT_FALSE(R.mayPoint(X, H2));
  EXPECT_TRUE(R.mayPoint(Y, H1));
  EXPECT_TRUE(R.mayPoint(Z, H2));
  EXPECT_TRUE(R.mayAlias(X, Y));
  EXPECT_FALSE(R.mayAlias(X, Z));
}

TEST(PointsTo, FlowsThroughGlobalsAndFields) {
  Program P = parse(R"(
    global g;
    proc main {
      x = new h1;
      g = x;
      y = g;
      c = new h2;
      c.f = x;
      w = c.f;
    }
  )");
  auto R = runPointsTo(P);
  EXPECT_TRUE(R.mayPoint(P.findVar("y"), P.findAlloc("h1")));
  EXPECT_TRUE(R.mayPoint(P.findVar("w"), P.findAlloc("h1")));
  EXPECT_FALSE(R.mayPoint(P.findVar("y"), P.findAlloc("h2")));
}

TEST(PointsTo, IsFlowInsensitive) {
  // x points to h2 at the end, but flow-insensitive analysis keeps h1 too.
  Program P = parse(R"(
    proc main {
      x = new h1;
      x = new h2;
    }
  )");
  auto R = runPointsTo(P);
  EXPECT_TRUE(R.mayPoint(P.findVar("x"), P.findAlloc("h1")));
  EXPECT_TRUE(R.mayPoint(P.findVar("x"), P.findAlloc("h2")));
}

TEST(PointsTo, UnreachableProceduresAreExcluded) {
  Program P = parse(R"(
    proc main { x = new h1; call used; }
    proc used { y = x; }
    proc unused { z = new h2; }
  )");
  auto R = runPointsTo(P);
  EXPECT_TRUE(R.isReachable(P.findProc("main")));
  EXPECT_TRUE(R.isReachable(P.findProc("used")));
  EXPECT_FALSE(R.isReachable(P.findProc("unused")));
  // z is never assigned in reachable code.
  EXPECT_FALSE(R.mayPoint(P.findVar("z"), P.findAlloc("h2")));
  EXPECT_TRUE(R.mayPoint(P.findVar("y"), P.findAlloc("h1")));
}

TEST(PointsTo, RecursionTerminates) {
  Program P = parse(R"(
    proc main { x = new h1; call rec; }
    proc rec { y = x; if { call rec; } }
  )");
  auto R = runPointsTo(P);
  EXPECT_TRUE(R.mayPoint(P.findVar("y"), P.findAlloc("h1")));
}

TEST(PointsTo, LoopsAndChoices) {
  Program P = parse(R"(
    proc main {
      choice { x = new h1; } or { x = new h2; }
      loop { y = x; x = y; }
    }
  )");
  auto R = runPointsTo(P);
  EXPECT_TRUE(R.mayPoint(P.findVar("y"), P.findAlloc("h1")));
  EXPECT_TRUE(R.mayPoint(P.findVar("y"), P.findAlloc("h2")));
}

} // namespace
