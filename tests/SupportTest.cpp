//===- SupportTest.cpp - Unit tests for the support library -------------------===//

#include "support/BitSet.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "support/Subprocess.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include "gtest/gtest.h"

#include <atomic>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <sys/wait.h>
#include <utility>
#include <vector>

namespace {

using namespace optabs;

TEST(Subprocess, MoveCarriesExitStatus) {
  std::string Err;
  support::ChildProcess C =
      support::ChildProcess::spawn({"/bin/sh", "-c", "exit 7"}, Err);
  ASSERT_TRUE(C.valid()) << Err;
  int Status = C.reap(30000);
  ASSERT_NE(Status, -1);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 7);
  EXPECT_EQ(C.exitStatus(), Status);

  // A reaped child's status must survive both move forms; the source is
  // reset to the default (invalid, status -1) state.
  support::ChildProcess M(std::move(C));
  EXPECT_EQ(M.exitStatus(), Status);
  EXPECT_EQ(C.exitStatus(), -1);
  support::ChildProcess A;
  A = std::move(M);
  EXPECT_EQ(A.exitStatus(), Status);
  EXPECT_EQ(M.exitStatus(), -1);
  EXPECT_FALSE(A.alive());
}

TEST(Prng, DeterministicForSeed) {
  Prng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
  }
  // Different seeds diverge (overwhelmingly likely).
  bool Diverged = false;
  Prng A2(42);
  for (int I = 0; I < 10 && !Diverged; ++I)
    Diverged = A2.next() != C.next();
  EXPECT_TRUE(Diverged);
}

TEST(Prng, BoundsAreRespected) {
  Prng Rng(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Rng.nextBelow(10), 10u);
    int64_t X = Rng.nextInRange(-5, 5);
    EXPECT_GE(X, -5);
    EXPECT_LE(X, 5);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Prng, ChanceIsRoughlyCalibrated) {
  Prng Rng(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += Rng.chance(1, 4);
  EXPECT_GT(Hits, 2200);
  EXPECT_LT(Hits, 2800);
}

TEST(Prng, SplitGivesIndependentStream) {
  Prng A(5);
  Prng B = A.split();
  std::set<uint64_t> Values;
  for (int I = 0; I < 50; ++I) {
    Values.insert(A.next());
    Values.insert(B.next());
  }
  EXPECT_EQ(Values.size(), 100u);
}

TEST(BitSet, SetTestResetCount) {
  BitSet S(130);
  EXPECT_EQ(S.size(), 130u);
  EXPECT_FALSE(S.any());
  S.set(0);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0) && S.test(64) && S.test(129));
  EXPECT_FALSE(S.test(1));
  EXPECT_EQ(S.count(), 3u);
  S.reset(64);
  EXPECT_FALSE(S.test(64));
  EXPECT_EQ(S.count(), 2u);
  S.clear();
  EXPECT_FALSE(S.any());
}

TEST(BitSet, UnionWithReportsChange) {
  BitSet A(70), B(70);
  B.set(3);
  B.set(69);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_FALSE(A.unionWith(B)); // no change the second time
  EXPECT_TRUE(A.test(3) && A.test(69));
  EXPECT_TRUE(A == B);
}

TEST(BitSet, ForEachVisitsInOrder) {
  BitSet S(200);
  std::vector<size_t> Expected{1, 63, 64, 127, 199};
  for (size_t I : Expected)
    S.set(I);
  std::vector<size_t> Seen;
  S.forEach([&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, Expected);
}

TEST(Stats, MinMaxAvg) {
  MinMaxAvg S;
  EXPECT_TRUE(S.empty());
  S.add(3);
  S.add(1);
  S.add(8);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.min(), 1);
  EXPECT_DOUBLE_EQ(S.max(), 8);
  EXPECT_DOUBLE_EQ(S.avg(), 4);
}

TEST(Stats, Histogram) {
  Histogram H;
  H.add(1);
  H.add(1);
  H.add(5);
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.buckets().at(1), 2u);
  EXPECT_EQ(H.buckets().at(5), 1u);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(formatDuration(0.014), "14ms");
  EXPECT_EQ(formatDuration(14), "14s");
  EXPECT_EQ(formatDuration(360), "6m");
  EXPECT_EQ(formatDuration(3 * 3600 + 1800), "3.5h");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + I;
  EXPECT_GE(T.seconds(), 0.0);
  EXPECT_GE(T.millis(), 0.0);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter T;
  T.setHeader({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::ostringstream OS;
  T.print(OS, "Title");
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Title"), std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer"), std::string::npos);
  // Column 2 of every row starts at the same offset.
  size_t HeaderPos = Out.find("value");
  size_t Row1 = Out.find("1");
  EXPECT_EQ((HeaderPos - Out.find("name")) % (Out.find('\n') + 1),
            (HeaderPos - Out.find("name")) % (Out.find('\n') + 1));
  (void)Row1;
}

TEST(TablePrinter, CellFormatters) {
  EXPECT_EQ(TablePrinter::cell(42LL), "42");
  EXPECT_EQ(TablePrinter::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::percent(0.25, 0), "25%");
}

TEST(TablePrinter, BarChart) {
  std::ostringstream OS;
  printBarChart(OS, "Chart", {{"a", 2.0}, {"bb", 1.0}}, 10);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("##########"), std::string::npos);
  EXPECT_NE(Out.find("#####"), std::string::npos);
  EXPECT_NE(Out.find("bb"), std::string::npos);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  support::ThreadPool Pool(1);
  EXPECT_EQ(Pool.numWorkers(), 1u);
  std::vector<size_t> Order;
  Pool.parallelFor(5, [&](size_t I, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    Order.push_back(I); // no synchronization needed: runs on the caller
  });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  support::ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Counts(N);
  Pool.parallelFor(N, [&](size_t I, unsigned Worker) {
    EXPECT_LT(Worker, 4u);
    Counts[I].fetch_add(1);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Counts[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, ResultsIndependentOfWorkerCount) {
  std::vector<uint64_t> Expected(64);
  for (size_t I = 0; I < Expected.size(); ++I)
    Expected[I] = I * I + 7;
  for (unsigned Workers : {1u, 2u, 8u}) {
    support::ThreadPool Pool(Workers);
    std::vector<uint64_t> Got(Expected.size(), 0);
    Pool.parallelFor(Got.size(),
                     [&](size_t I, unsigned) { Got[I] = I * I + 7; });
    EXPECT_EQ(Got, Expected) << "workers=" << Workers;
  }
}

TEST(ThreadPool, TaskExceptionIsRethrownAfterDrain) {
  support::ThreadPool Pool(4);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I, unsigned) {
                                  Ran.fetch_add(1);
                                  if (I == 3)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The batch drains completely before the exception propagates.
  EXPECT_EQ(Ran.load(), 100u);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  support::ThreadPool Pool(2);
  auto A = Pool.submit([] { return 21 * 2; });
  auto B = Pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(A.get(), 42);
  EXPECT_EQ(B.get(), "ok");
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(support::ThreadPool::hardwareWorkers(), 1u);
}

} // namespace
