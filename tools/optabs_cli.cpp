//===- optabs_cli.cpp - Command-line driver for the optabs library ------------===//
//
// Runs the optimum-abstraction search on a textual mini-IR program:
//
//   optabs-cli PROGRAM.opt --client=escape [options]
//   optabs-cli PROGRAM.opt --client=typestate
//       [--property="init=closed; open: closed->opened, opened->ERR; ..."]
//
// Options (every setting is a field of optabs::Config, with the standard
// precedence explicit flag > OPTABS_* environment > default):
//   --client=escape|typestate   which parametric analysis to run (required)
//   --property=SPEC             type-state automaton; without it the §6
//                               stress property (must-alias precision) runs
//   --k=N                       dropk beam width (default 5; 0 = exact)
//   --strategy=tracer|eliminate-current|greedy-grow
//   --max-iters=N               per-query iteration budget (default 100)
//   --traces-per-iter=N         counterexamples per failed iteration
//   --threads=N                 worker threads (1 = sequential, 0 = all)
//   --audit                     validate every verdict with the certificate
//                               checker and fail (exit 1) on any invariant
//                               violation or certificate mismatch
//   --event-trace=PATH          write a JSONL CEGAR event trace to PATH
//                               (truncated once at startup)
//   --metrics=PATH              enable the metrics layer and write a
//                               Prometheus-style text dump of all counters,
//                               gauges and histograms to PATH
//   --chrome-trace=PATH         enable the metrics layer and write a Chrome
//                               trace-event JSON of all profiler spans to
//                               PATH (load in chrome://tracing or Perfetto)
//   --step-budget=N             deterministic logical-step budget applied to
//                               every kernel (forward state visits, backward
//                               cube expansions, solver decisions); a query
//                               that exhausts it goes Unresolved with the
//                               exhausted resource and site reported
//   --memory-budget-mb=N        resident-bytes ceiling for the forward-run
//                               cache; pressure triggers the graceful-
//                               degradation ladder (evict cache, shrink
//                               beam, single trace per iteration)
//   --faults=SPEC               arm the deterministic fault-injection
//                               registry, e.g. "forward.visit:alloc@3;
//                               backward.step:cancel" (also armed by the
//                               OPTABS_FAULTS environment variable)
//   --stats                     print program statistics and exit
//   --verbose                   print the program before the report
//
// Every check(v[, state]) command in the program becomes a query. For the
// escape client the query is "is v thread-local here"; for the type-state
// client one query is posed per (check, may-pointed allocation site) and
// asks that the object's type-state be the check's payload (or that no
// error occurred, under the stress property).
//
//===----------------------------------------------------------------------===//

#include <optabs/optabs.h>

#include <fstream>
#include <iostream>
#include <sstream>

using namespace optabs;
using namespace optabs::ir;

namespace {

struct CliOptions {
  std::string ProgramPath;
  std::string Client;
  std::string Property;
  Config Cfg; // audit lives in Cfg.Audit.Enabled
  bool Stats = false;
  bool Verbose = false;
};

/// Aggregated audit evidence across driver runs (type-state runs one
/// driver per site).
struct AuditTally {
  size_t Violations = 0;
  unsigned Checked = 0;
  size_t Failures = 0;
};

int usage(const char *Msg = nullptr) {
  if (Msg)
    std::cerr << "error: " << Msg << "\n";
  std::cerr << "usage: optabs-cli PROGRAM.opt --client=escape|typestate "
               "[--property=SPEC] [--k=N]\n"
               "       [--strategy=tracer|eliminate-current|greedy-grow] "
               "[--max-iters=N]\n"
               "       [--traces-per-iter=N] [--threads=N] [--audit] "
               "[--event-trace=PATH]\n"
               "       [--metrics=PATH] [--chrome-trace=PATH] "
               "[--step-budget=N]\n"
               "       [--memory-budget-mb=N] [--faults=SPEC] [--stats] "
               "[--verbose]\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts, std::string &Err) {
  Config &C = Opts.Cfg;
  std::vector<std::string> Positionals;
  uint64_t StepBudget = 0, MemoryBudgetMb = 0;
  support::ArgParser Args;
  Args.positional(&Positionals)
      .option("--client", &Opts.Client, "escape or typestate")
      .option("--property", &Opts.Property, "type-state automaton spec")
      .option("--k", &C.Execution.K, "dropk beam width (0 = exact)")
      .option("--strategy", &C.Execution.Strategy,
              "tracer, eliminate-current or greedy-grow")
      .option("--max-iters", &C.Execution.MaxItersPerQuery,
              "per-query iteration budget")
      .option("--traces-per-iter", &C.Execution.TracesPerIteration,
              "counterexamples per failed iteration")
      .option("--threads", &C.Execution.NumThreads,
              "worker threads (1 = sequential, 0 = hardware)")
      .option("--step-budget", &StepBudget,
              "logical-step budget for every kernel")
      .option("--memory-budget-mb", &MemoryBudgetMb,
              "forward-cache resident ceiling")
      .option("--event-trace", &C.Observability.EventTracePath,
              "JSONL CEGAR trace output")
      .option("--metrics", &C.Observability.MetricsPath,
              "Prometheus text dump output")
      .option("--chrome-trace", &C.Observability.ProfilePath,
              "Chrome trace-event JSON output")
      .callback(
          "--faults",
          [](const std::string &V, std::string &CbErr) {
            return support::FaultRegistry::global().arm(V, CbErr);
          },
          "deterministic fault-injection spec")
      .flag("--audit", &C.Audit.Enabled, "certificate-check every verdict")
      .flag("--stats", &Opts.Stats, "print program statistics and exit")
      .flag("--verbose", &Opts.Verbose, "print the program first");
  if (!Args.parse(Argc, Argv, Err))
    return false;
  if (StepBudget > 0) {
    C.Budgets.ForwardStepBudget = StepBudget;
    C.Budgets.BackwardStepBudget = StepBudget;
    C.Budgets.SolverDecisionBudget = StepBudget;
  }
  if (MemoryBudgetMb > 0)
    C.Budgets.MemoryBudgetBytes = MemoryBudgetMb * 1024 * 1024;
  if (Positionals.size() > 1) {
    Err = "multiple program files given";
    return false;
  }
  if (Positionals.empty()) {
    Err = "no program file given";
    return false;
  }
  Opts.ProgramPath = Positionals[0];
  if (!Opts.Stats && Opts.Client != "escape" && Opts.Client != "typestate") {
    Err = "--client must be 'escape' or 'typestate'";
    return false;
  }
  std::vector<ConfigError> Invalid = C.validate();
  if (!Invalid.empty()) {
    Err = formatConfigErrors(Invalid);
    return false;
  }
  return true;
}

/// Parses "init=closed; open: closed->opened, opened->ERR; close: ..."
/// into a TypestateSpec. ERR (any capitalization) is the error verdict.
bool parseProperty(const std::string &Spec, Program &P,
                   std::unique_ptr<typestate::TypestateSpec> &Out,
                   std::string &Err) {
  auto Trim = [](std::string S) {
    size_t B = S.find_first_not_of(" \t");
    size_t E = S.find_last_not_of(" \t");
    return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
  };
  std::vector<std::string> Clauses;
  std::stringstream SS(Spec);
  std::string Clause;
  while (std::getline(SS, Clause, ';'))
    if (!Trim(Clause).empty())
      Clauses.push_back(Trim(Clause));
  if (Clauses.empty() || Clauses[0].rfind("init=", 0) != 0) {
    Err = "property must start with 'init=<state>'";
    return false;
  }
  Out = std::make_unique<typestate::TypestateSpec>(
      Trim(Clauses[0].substr(5)));
  for (size_t I = 1; I < Clauses.size(); ++I) {
    size_t Colon = Clauses[I].find(':');
    if (Colon == std::string::npos) {
      Err = "expected 'method: from->to, ...' in '" + Clauses[I] + "'";
      return false;
    }
    MethodId M = P.makeMethod(Trim(Clauses[I].substr(0, Colon)));
    std::stringstream TS(Clauses[I].substr(Colon + 1));
    std::string Rule;
    while (std::getline(TS, Rule, ',')) {
      size_t Arrow = Rule.find("->");
      if (Arrow == std::string::npos) {
        Err = "expected 'from->to' in '" + Rule + "'";
        return false;
      }
      uint32_t From = Out->addState(Trim(Rule.substr(0, Arrow)));
      std::string To = Trim(Rule.substr(Arrow + 2));
      if (To == "ERR" || To == "err" || To == "error")
        Out->addErrorTransition(M, From);
      else
        Out->addTransition(M, From, Out->addState(To));
    }
  }
  return true;
}

void printOutcome(const Program &P, const tracer::QueryOutcome &O,
                  const std::string &Extra) {
  const CheckSite &Site = P.checkSite(O.Check);
  std::cout << "  " << commandToString(P, Site.Command) << " in "
            << P.proc(Site.Proc).Name << Extra << ": "
            << tracer::verdictName(O.V);
  if (O.V == tracer::Verdict::Proven)
    std::cout << " with " << O.CheapestParam << " (|p| = " << O.CheapestCost
              << ")";
  if (O.Exhaustion)
    std::cout << " (exhausted " << support::resourceName(O.Exhaustion->Res)
              << " at " << O.Exhaustion->Site << ")";
  std::cout << " [" << O.Iterations << " iteration(s)]\n";
}

/// Folds one driver run's audit evidence into \p Tally: invariant records
/// (always collected) and, under --audit, independent certificate checks
/// of every verdict.
template <typename Analysis>
void auditDriver(const Program &P, const Analysis &A, const CliOptions &Opts,
                 const tracer::QueryDriver<Analysis> &Driver,
                 const std::vector<tracer::QueryOutcome> &Outcomes,
                 AuditTally &Tally) {
  for (const auto &V : Driver.stats().Violations) {
    ++Tally.Violations;
    std::cerr << "audit: invariant violation [" << V.Check << "] in "
              << V.Where << ": " << V.Message << "\n";
  }
  if (!Opts.Cfg.Audit.Enabled)
    return;
  tracer::CertificateOptions CertOpts;
  CertOpts.CheckMinimality = Opts.Cfg.Execution.Strategy != "greedy-grow";
  tracer::CertificateChecker<Analysis> Checker(P, A, CertOpts);
  tracer::CertificateReport Report =
      Checker.check(Outcomes, Driver.finalViableSets());
  Tally.Checked += Report.ProvenChecked + Report.ImpossibleChecked +
                   Report.MinimalityChecked + Report.EliminatedSampled;
  for (const tracer::CertificateIssue &Issue : Report.Issues) {
    ++Tally.Failures;
    std::cerr << "audit: certificate failure [" << Issue.Kind << "] query "
              << Issue.Query << ": " << Issue.Detail << "\n";
  }
}

/// Prints the audit summary; exit status 1 when anything failed.
int finishAudit(const CliOptions &Opts, const AuditTally &Tally) {
  if (!Opts.Cfg.Audit.Enabled)
    return 0;
  std::cout << "audit: " << Tally.Checked << " certificate check(s), "
            << Tally.Failures << " failure(s), " << Tally.Violations
            << " invariant violation(s)\n";
  return (Tally.Failures > 0 || Tally.Violations > 0) ? 1 : 0;
}

int runEscape(const Program &P, const CliOptions &Opts) {
  escape::EscapeAnalysis A(P);
  tracer::TracerOptions TracerOpts =
      tracer::TracerOptions::fromConfig(Opts.Cfg);
  TracerOpts.EventTraceLabel = "escape";
  tracer::QueryDriver<escape::EscapeAnalysis> Driver(P, A, TracerOpts);
  std::vector<CheckId> Queries;
  for (uint32_t I = 0; I < P.numChecks(); ++I)
    Queries.push_back(CheckId(I));
  std::cout << "thread-escape analysis, " << Queries.size()
            << " queries, strategy " << Opts.Cfg.Execution.Strategy
            << ", k = " << Opts.Cfg.Execution.K << "\n";
  std::vector<tracer::QueryOutcome> Outcomes = Driver.run(Queries);
  for (const auto &O : Outcomes)
    printOutcome(P, O, "");
  AuditTally Tally;
  auditDriver(P, A, Opts, Driver, Outcomes, Tally);
  return finishAudit(Opts, Tally);
}

int runTypestate(Program &P, const CliOptions &Opts) {
  std::unique_ptr<typestate::TypestateSpec> Spec;
  if (!Opts.Property.empty()) {
    std::string Err;
    if (!parseProperty(Opts.Property, P, Spec, Err)) {
      std::cerr << "error: " << Err << "\n";
      return 2;
    }
  } else {
    Spec = std::make_unique<typestate::TypestateSpec>(
        typestate::TypestateSpec::stress());
  }
  pointer::PointsToResult Pt = pointer::runPointsTo(P);
  std::cout << "type-state analysis ("
            << (Opts.Property.empty() ? "stress property"
                                      : "property automaton")
            << "), strategy " << Opts.Cfg.Execution.Strategy
            << ", k = " << Opts.Cfg.Execution.K << "\n";
  AuditTally Tally;
  for (uint32_t H = 0; H < P.numAllocs(); ++H) {
    std::vector<CheckId> Queries;
    for (uint32_t I = 0; I < P.numChecks(); ++I)
      if (Pt.mayPoint(P.checkSite(CheckId(I)).Var, AllocId(H)))
        Queries.push_back(CheckId(I));
    if (Queries.empty())
      continue;
    typestate::TypestateAnalysis A(P, *Spec, AllocId(H), Pt);
    tracer::TracerOptions PerSite =
        tracer::TracerOptions::fromConfig(Opts.Cfg);
    PerSite.EventTraceLabel = "typestate/site=" + P.allocName(AllocId(H));
    tracer::QueryDriver<typestate::TypestateAnalysis> Driver(P, A, PerSite);
    std::vector<tracer::QueryOutcome> Outcomes = Driver.run(Queries);
    for (const auto &O : Outcomes)
      printOutcome(P, O, " (site " + P.allocName(AllocId(H)) + ")");
    auditDriver(P, A, Opts, Driver, Outcomes, Tally);
  }
  return finishAudit(Opts, Tally);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  std::vector<ConfigError> EnvErrors;
  Opts.Cfg = Config::fromEnv(&EnvErrors);
  for (const ConfigError &E : EnvErrors)
    std::cerr << "warning: " << E.Field << ": " << E.Message << "\n";
  std::string Err;
  if (!parseArgs(Argc, Argv, Opts, Err))
    return usage(Err.c_str());

  if (!Opts.Cfg.Observability.EventTracePath.empty()) {
    // Truncate once here; the drivers append, so the per-site type-state
    // runs interleave into one file.
    std::ofstream Truncate(Opts.Cfg.Observability.EventTracePath,
                           std::ios::trunc);
    if (!Truncate) {
      std::cerr << "error: cannot write event trace '"
                << Opts.Cfg.Observability.EventTracePath << "'\n";
      return 2;
    }
  }

  std::ifstream In(Opts.ProgramPath);
  if (!In) {
    std::cerr << "error: cannot open '" << Opts.ProgramPath << "'\n";
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  Program P;
  if (!parseProgram(Buffer.str(), P, Err)) {
    std::cerr << Opts.ProgramPath << ": " << Err << "\n";
    return 2;
  }
  if (Opts.Verbose)
    printProgram(std::cout, P);
  if (Opts.Stats) {
    std::cout << "procs: " << P.numProcs() << "\ncommands: "
              << P.numCommands() << "\nvariables: " << P.numVars()
              << "\nallocation sites: " << P.numAllocs() << "\nfields: "
              << P.numFields() << "\nchecks: " << P.numChecks() << "\n";
    if (Opts.Client.empty())
      return 0;
  }
  if (Opts.Client == "escape")
    return runEscape(P, Opts);
  return runTypestate(P, Opts);
}
