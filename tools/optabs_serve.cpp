//===- optabs_serve.cpp - JSONL analysis server over stdio or sockets -----===//
//
// A long-lived front end to service::AnalysisService speaking the
// versioned JSONL protocol of service/Protocol.h: one request object per
// line, one (or, for "drain"/"trace", several) response objects per line.
// See the Protocol.h file comment for the operation reference and
// README.md for a quick-start transcript.
//
//   optabs-serve [--listen=unix:PATH|tcp:PORT] [--threads=N]
//                [--cache-capacity=N] [--max-sessions=N] [--metrics=PATH]
//                [--incremental=0|1] [--read-timeout-ms=N]
//                [--max-line-bytes=N] [--trace-capacity=N]
//                [--trace-jsonl=PATH] [--trace-chrome=PATH]
//                [--trace-slow-ms=X] [--cache-dir=PATH] [--spill-bytes=N]
//                [--persist-on-shutdown=0|1]
//
// Cache persistence: --cache-dir names a directory for the on-disk cache
// tier (snapshots + spill files). With it set, registering a program
// automatically rehydrates any matching snapshot (warm restart), the
// "cache" op's persist/load/spill actions work, and --persist-on-shutdown
// snapshots every program on the graceful path, so a SIGTERM'd worker
// comes back warm. --spill-bytes caps the spill tier (0 = unbounded).
// Shards of one optabs-shardd deployment share a cache dir: spill files
// are keyed by program fingerprint, not by process-local epoch, so a
// stolen or restarted shard re-warms from its peers' spills.
//
// Transport (service/Transport.h): by default the server speaks on
// stdin/stdout; --listen binds a Unix-domain socket or a loopback TCP
// port and serves one connection at a time - each accepted connection
// runs the same request loop against the same long-lived service, so
// programs, sessions, and caches survive across connections (this is how
// optabs-shardd drives its worker shards). A "shutdown" op ends the
// process from any transport; a disconnect merely returns the server to
// accept(). Lines longer than --max-line-bytes are consumed and answered
// with a structured error; --read-timeout-ms bounds how long a socket
// connection may sit silent before it is dropped (0 = no limit).
//
// Signals: SIGTERM/SIGINT run the same graceful path as the "shutdown"
// op - the in-flight batch finishes, and the --metrics /--trace-jsonl/
// --trace-chrome artifacts are written - instead of the default
// die-and-lose-every-dump disposition.
//
// --incremental (default 1) controls diff-based incremental
// re-registration (Config::ServiceConfig::IncrementalReRegister). With it
// on, re-registering a program reports the dirty procedure set and the
// stats op reports migration counters; with it off the server reproduces
// the historical evict-everything transcript byte for byte.
//
// Request tracing: any --trace-* flag (or OPTABS_SERVICE_TRACE=1) turns
// on the service flight recorder. Every protocol line mints a trace
// context (trace id = line sequence number), so a job's whole lifecycle -
// admission, batching, driver phases, cache attribution, fulfilment - can
// be pulled back out with the "trace" op (drains the recorder) or the
// "explain" op (one job's timeline). --trace-jsonl / --trace-chrome dump
// the recorder on shutdown; --trace-slow-ms logs jobs whose end-to-end
// latency exceeds the threshold. Flag defaults seed from OPTABS_*
// environment overrides, so precedence is flags > environment > defaults.
//
// The server runs the service with AutoDispatch off: submitted jobs are
// queued and only execute inside "drain", which then emits every finished
// job's result in job-id order. Responses carry no wall-clock fields
// (ping's uptime_s is scrubbed by the transcript runner), so a scripted
// session always produces a byte-identical transcript - CI boots this
// binary, pipes tools/testdata/serve_session.jsonl through it, and diffs
// the output against the checked-in golden file.
//
//===----------------------------------------------------------------------===//

#include <optabs/optabs.h>

#include "service/Transport.h"

#include <csignal>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace optabs;
using tracer::JsonObject;

namespace {

/// Set by the SIGTERM/SIGINT handler; the request loop checks it after
/// every interrupted or completed read and runs the graceful path.
volatile sig_atomic_t GShutdownSignal = 0;

void onShutdownSignal(int Sig) { GShutdownSignal = Sig; }

/// Installed without SA_RESTART so a signal interrupts the blocking
/// read()/poll()/accept() with EINTR instead of silently restarting it.
void installSignalHandlers() {
  struct sigaction SA {};
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  // A client vanishing mid-response must surface as a write error, not
  // kill the server.
  signal(SIGPIPE, SIG_IGN);
}

struct ServerState {
  std::unique_ptr<service::AnalysisService> Svc;
  std::map<uint64_t, service::Session> Sessions;
  /// Futures of every accepted job, in submission (= job-id) order;
  /// drained and cleared by the "drain" op.
  std::vector<std::future<service::QueryResult>> InFlight;
  Timer Uptime;
  uint64_t LineSeq = 0; ///< per-request trace id (comments don't count)
};

/// Reads the per-session configuration fields of an "open-session"
/// request into \p C. Returns false (with \p Err) on an unknown strategy
/// or a non-integer where an integer belongs.
bool readSessionConfig(const service::JsonLine &Req, Config &C,
                       std::string &Err) {
  struct UIntField {
    const char *Key;
    uint64_t *Out;
  };
  uint64_t K = C.Execution.K, MaxIters = C.Execution.MaxItersPerQuery;
  uint64_t Traces = C.Execution.TracesPerIteration;
  uint64_t StepBudget = 0;
  uint64_t MaxPending = C.Service.MaxPendingPerSession;
  uint64_t MaxJobs = C.Service.MaxJobsPerSession;
  for (UIntField F : {UIntField{"k", &K}, UIntField{"max-iters", &MaxIters},
                      UIntField{"traces-per-iter", &Traces},
                      UIntField{"step-budget", &StepBudget},
                      UIntField{"max-pending", &MaxPending},
                      UIntField{"max-jobs", &MaxJobs}}) {
    if (!Req.has(F.Key))
      continue;
    auto V = Req.getUInt(F.Key);
    if (!V) {
      Err = std::string("field '") + F.Key + "' must be an unsigned integer";
      return false;
    }
    *F.Out = *V;
  }
  C.Execution.K = static_cast<unsigned>(K);
  C.Execution.MaxItersPerQuery = static_cast<unsigned>(MaxIters);
  C.Execution.TracesPerIteration = static_cast<unsigned>(Traces);
  if (StepBudget > 0) {
    C.Budgets.ForwardStepBudget = StepBudget;
    C.Budgets.BackwardStepBudget = StepBudget;
    C.Budgets.SolverDecisionBudget = StepBudget;
  }
  C.Service.MaxPendingPerSession = static_cast<unsigned>(MaxPending);
  C.Service.MaxJobsPerSession = MaxJobs;
  if (auto S = Req.getString("strategy"))
    C.Execution.Strategy = *S;
  // Config::validate() (run by openSession) rejects unknown strategies and
  // inconsistent combinations with structured errors.
  return true;
}

std::string resultLine(const service::QueryResult &R) {
  JsonObject O = service::response(true);
  O.field("op", "result");
  O.field("job", R.Job);
  O.field("session", R.Session);
  O.field("status", service::jobStatusName(R.Status));
  if (R.Status == service::JobStatus::Done) {
    O.field("verdict", tracer::verdictName(R.V));
    O.field("iterations", R.Iterations);
    if (R.V == tracer::Verdict::Proven) {
      O.field("cost", R.CheapestCost);
      O.field("param", R.CheapestParam);
    }
    if (!R.ExhaustedResource.empty()) {
      O.field("exhausted", R.ExhaustedResource);
      O.field("site", R.ExhaustedSite);
    }
  } else {
    O.field("error", R.Error);
  }
  return O.str();
}

/// Why the per-connection request loop returned.
enum class LoopExit {
  Shutdown,     ///< "shutdown" op: stop the whole server
  Disconnected, ///< EOF/error on this connection: accept the next one
  Signalled,    ///< SIGTERM/SIGINT: graceful shutdown
};

/// Handles one parsed request line. Returns false for "shutdown".
bool handleRequest(ServerState &St, const Config &Base,
                   const std::string &Line, service::LineChannel &Ch) {
  auto Emit = [&Ch](const std::string &S) { Ch.writeLine(S); };
  auto EmitObj = [&Ch](const JsonObject &O) { Ch.writeLine(O.str()); };

  service::JsonLine Req;
  std::string Err;
  if (!service::JsonLine::parse(Line, Req, Err)) {
    EmitObj(JsonObject(service::response(false))
                .field("error", "malformed request: " + Err));
    return true;
  }
  auto Op = Req.getString("op");
  if (!Op) {
    EmitObj(JsonObject(service::response(false))
                .field("error", "missing 'op' field"));
    return true;
  }

  if (*Op == "register-program") {
    auto Name = Req.getString("name");
    auto Text = Req.getString("text");
    if (!Name || !Text) {
      Emit(service::errorLine(*Op,
                              "register-program needs 'name' and 'text'"));
      return true;
    }
    service::RegisterResult R = St.Svc->registerProgram(*Name, *Text);
    if (!R.Ok) {
      Emit(service::errorLine(*Op, R.Error));
      return true;
    }
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("name", *Name);
    O.field("epoch", R.Epoch);
    O.field("checks", R.Checks);
    O.field("allocs", R.Allocs);
    // The dirty set of a re-registration, only under --incremental=1 so
    // the legacy transcript stays byte-identical with the feature off.
    if (R.ReRegistered && Base.Service.IncrementalReRegister) {
      O.field("incremental", R.Incremental);
      O.field("dirty_checks", R.DirtyChecks);
      if (R.Incremental) {
        O.field("dirty_procs", R.DirtyProcs.size());
        std::string Joined;
        for (const std::string &P : R.DirtyProcs) {
          if (!Joined.empty())
            Joined += ',';
          Joined += P;
        }
        O.field("dirty", Joined);
      }
    }
    EmitObj(O);
  } else if (*Op == "open-session") {
    service::SessionSpec Spec;
    Spec.SessionConfig = Config::defaults();
    if (auto P = Req.getString("program"))
      Spec.Program = *P;
    if (auto C = Req.getString("client"))
      Spec.Client = *C;
    if (auto P = Req.getString("property"))
      Spec.Property = *P;
    std::string CfgErr;
    if (!readSessionConfig(Req, Spec.SessionConfig, CfgErr)) {
      Emit(service::errorLine(*Op, CfgErr));
      return true;
    }
    std::string OpenErr;
    service::Session S = St.Svc->openSession(Spec, OpenErr);
    if (!S.valid()) {
      Emit(service::errorLine(*Op, OpenErr));
      return true;
    }
    St.Sessions[S.id()] = S;
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("session", S.id());
    EmitObj(O);
  } else if (*Op == "submit") {
    auto Sess = Req.getUInt("session");
    auto Check = Req.getUInt("check");
    if (!Sess || !Check) {
      Emit(service::errorLine(*Op, "submit needs 'session' and 'check'"));
      return true;
    }
    auto It = St.Sessions.find(*Sess);
    if (It == St.Sessions.end()) {
      Emit(service::errorLine(*Op,
                              "unknown session " + std::to_string(*Sess)));
      return true;
    }
    service::JobSpec Job;
    Job.Check = static_cast<uint32_t>(*Check);
    if (auto Site = Req.getUInt("site"))
      Job.Site = static_cast<uint32_t>(*Site);
    if (auto Prio = Req.getInt("priority"))
      Job.Priority = static_cast<int32_t>(*Prio);
    // Protocol ingress mints the request's trace identity: the line
    // sequence number, stable across reruns of the same script.
    Job.Parent.TraceId = St.LineSeq;
    Job.Parent.SpanId = St.LineSeq;
    uint64_t JobId = 0;
    std::future<service::QueryResult> F = It->second.submit(Job, &JobId);
    if (JobId == 0) {
      // Rejected synchronously: the ready future carries the reason.
      service::QueryResult R = F.get();
      JsonObject O = service::response(false);
      O.field("op", *Op);
      O.field("status", service::jobStatusName(R.Status));
      O.field("error", R.Error);
      EmitObj(O);
      return true;
    }
    St.InFlight.push_back(std::move(F));
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("job", JobId);
    EmitObj(O);
  } else if (*Op == "cancel") {
    auto Sess = Req.getUInt("session");
    auto It = Sess ? St.Sessions.find(*Sess) : St.Sessions.end();
    if (It == St.Sessions.end()) {
      Emit(service::errorLine(*Op, "unknown session"));
      return true;
    }
    size_t N = It->second.cancelPending();
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("cancelled", N);
    EmitObj(O);
  } else if (*Op == "close-session") {
    auto Sess = Req.getUInt("session");
    auto It = Sess ? St.Sessions.find(*Sess) : St.Sessions.end();
    if (It == St.Sessions.end()) {
      Emit(service::errorLine(*Op, "unknown session"));
      return true;
    }
    It->second.close();
    St.Sessions.erase(It);
    JsonObject O = service::response(true);
    O.field("op", *Op);
    EmitObj(O);
  } else if (*Op == "drain") {
    St.Svc->drain();
    for (std::future<service::QueryResult> &F : St.InFlight)
      Emit(resultLine(F.get()));
    size_t N = St.InFlight.size();
    St.InFlight.clear();
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("results", N);
    EmitObj(O);
  } else if (*Op == "ping") {
    // Liveness + backlog in one deterministic-except-uptime line: the
    // shard supervisor health-checks workers with this op, and the
    // transcript runner's SCRUB step zeroes uptime_s.
    service::ServiceStats S = St.Svc->stats();
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("server", "optabs-serve");
    O.field("protocol", service::ProtocolVersion);
    O.field("uptime_s", St.Uptime.seconds());
    O.field("pending", S.QueueDepth);
    EmitObj(O);
  } else if (*Op == "stats") {
    service::ServiceStats S = St.Svc->stats();
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("programs", S.ProgramsRegistered);
    O.field("sessions_opened", S.SessionsOpened);
    O.field("sessions_closed", S.SessionsClosed);
    O.field("submitted", S.JobsSubmitted);
    O.field("rejected", S.JobsRejected);
    O.field("cancelled", S.JobsCancelled);
    O.field("completed", S.JobsCompleted);
    O.field("failed", S.JobsFailed);
    O.field("batches", S.Batches);
    O.field("coalesced", S.CoalescedJobs);
    O.field("queue_depth", S.QueueDepth);
    O.field("forward_runs", S.ForwardRuns);
    O.field("backward_runs", S.BackwardRuns);
    O.field("cache_hits", S.CacheHits);
    O.field("cache_misses", S.CacheMisses);
    O.field("cache_evictions", S.CacheEvictions);
    O.field("stale_invalidated", S.StaleEntriesInvalidated);
    if (Base.Service.IncrementalReRegister) {
      O.field("entries_migrated", S.EntriesMigrated);
      O.field("entries_invalidated", S.EntriesInvalidated);
      O.field("procs_dirty", S.ProceduresDirty);
      O.field("verdicts_replayed", S.VerdictsReplayed);
    }
    std::string Pending;
    for (const auto &[Id, N] : S.PendingBySession) {
      if (!Pending.empty())
        Pending += ',';
      Pending += std::to_string(Id) + ":" + std::to_string(N);
    }
    O.field("pending_by_session", Pending);
    O.field("batch_jobs_p50", S.BatchJobsP50);
    O.field("batch_jobs_p90", S.BatchJobsP90);
    O.field("batch_jobs_p99", S.BatchJobsP99);
    O.field("fixpoints_amortized", S.FixpointsAmortized);
    O.field("slow_queries", S.SlowQueries);
    EmitObj(O);
  } else if (*Op == "cache") {
    auto Action = Req.getString("action");
    if (!Action) {
      Emit(service::errorLine(
          *Op, "cache needs 'action' (stats|persist|load|spill|evict)"));
      return true;
    }
    std::string Program;
    if (auto P = Req.getString("program"))
      Program = *P;
    service::CacheOpResult R = St.Svc->cacheOp(*Action, Program);
    if (!R.Ok) {
      Emit(service::errorLine(*Op, R.Error));
      return true;
    }
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("action", *Action);
    O.field("entries", R.Entries);
    O.field("resident_bytes", R.ResidentBytes);
    O.field("runs_persisted", R.RunsPersisted);
    O.field("verdicts_persisted", R.VerdictsPersisted);
    O.field("runs_loaded", R.RunsLoaded);
    O.field("verdicts_loaded", R.VerdictsLoaded);
    O.field("runs_skipped", R.RunsSkipped);
    O.field("verdicts_skipped", R.VerdictsSkipped);
    O.field("spilled", R.Spilled);
    O.field("evicted", R.Evicted);
    O.field("spill_writes", R.SpillWrites);
    O.field("spill_loads", R.SpillLoads);
    std::string Notes;
    for (const std::string &N : R.Notes) {
      if (!Notes.empty())
        Notes += ';';
      Notes += N;
    }
    O.field("notes", Notes);
    EmitObj(O);
  } else if (*Op == "trace") {
    if (!St.Svc->tracingEnabled()) {
      Emit(service::errorLine(
          *Op, "tracing is disabled (enable with "
               "--trace-capacity=N or OPTABS_SERVICE_TRACE=1)"));
      return true;
    }
    // Dropped count first: drain() empties the ring but the overflow
    // counter keeps the history.
    uint64_t Dropped = St.Svc->traceDropped();
    std::vector<support::TraceEvent> Events = St.Svc->drainTrace();
    for (const support::TraceEvent &E : Events) {
      JsonObject O = service::response(true);
      O.field("op", "trace-event");
      O.field("seq", E.Seq);
      O.field("kind", E.Kind);
      O.field("trace", E.TraceId);
      O.field("span", E.SpanId);
      O.field("job", E.Job);
      O.field("session", E.Session);
      O.field("batch", E.Batch);
      O.field("ts_ns", E.TsNs);
      O.field("u0", E.U0);
      O.field("u1", E.U1);
      O.field("seconds", E.D0);
      O.field("note", E.Note);
      EmitObj(O);
    }
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("events", Events.size());
    O.field("dropped", Dropped);
    EmitObj(O);
  } else if (*Op == "explain") {
    auto JobN = Req.getUInt("job");
    if (!JobN) {
      Emit(service::errorLine(*Op, "explain needs 'job'"));
      return true;
    }
    service::JobTimeline T = St.Svc->explain(*JobN);
    if (!T.Found) {
      Emit(service::errorLine(
          *Op, "no timeline for job " + std::to_string(*JobN) +
                   " (tracing disabled, job never admitted, "
                   "or entry evicted)"));
      return true;
    }
    JsonObject O = service::response(true);
    O.field("op", *Op);
    O.field("job", T.Job);
    O.field("session", T.Session);
    O.field("check", T.Check);
    O.field("site", T.Site);
    O.field("status", T.Status);
    if (!T.Verdict.empty())
      O.field("verdict", T.Verdict);
    O.field("batch", T.Batch);
    O.field("peers", T.Peers);
    O.field("queue_wait_ns", T.queueWaitNs());
    O.field("batch_wait_ns", T.batchWaitNs());
    O.field("run_ns", T.runNs());
    O.field("e2e_ns", T.endToEndNs());
    O.field("plan_s", T.PlanS);
    O.field("forward_s", T.ForwardS);
    O.field("classify_s", T.ClassifyS);
    O.field("extract_s", T.ExtractS);
    O.field("backward_s", T.BackwardS);
    O.field("merge_s", T.MergeS);
    O.field("cache_hits", T.CacheHits);
    O.field("cache_misses", T.CacheMisses);
    O.field("replayed", T.Replayed);
    if (T.Replayed) {
      O.field("data_epoch", T.ReplayDataEpoch);
      O.field("clean_footprint", T.CleanFootprint);
    }
    EmitObj(O);
  } else if (*Op == "shutdown") {
    JsonObject O = service::response(true);
    O.field("op", *Op);
    EmitObj(O);
    return false;
  } else {
    Emit(service::errorLine(*Op, "unknown op '" + *Op + "'"));
  }
  return true;
}

/// Serves one connection until shutdown, disconnect, or a signal.
/// \p ReadTimeoutMs only applies to socket connections (stdio blocks).
LoopExit requestLoop(ServerState &St, const Config &Base,
                     service::LineChannel &Ch, int ReadTimeoutMs) {
  std::string Line;
  for (;;) {
    if (GShutdownSignal)
      return LoopExit::Signalled;
    service::LineChannel::ReadStatus RS = Ch.readLine(Line, ReadTimeoutMs);
    switch (RS) {
    case service::LineChannel::ReadStatus::Line:
      break;
    case service::LineChannel::ReadStatus::Eof:
    case service::LineChannel::ReadStatus::Error:
      return LoopExit::Disconnected;
    case service::LineChannel::ReadStatus::Timeout:
      // Structured goodbye, then drop the connection: a silent peer must
      // not pin the accept loop forever.
      Ch.writeLine(service::errorLine(
          "", "read timeout after " + std::to_string(ReadTimeoutMs) +
                  "ms; closing connection"));
      return LoopExit::Disconnected;
    case service::LineChannel::ReadStatus::Overflow:
      Ch.writeLine(service::errorLine(
          "", "request line exceeds " + std::to_string(Ch.maxLineBytes()) +
                  " bytes; line dropped"));
      continue;
    case service::LineChannel::ReadStatus::Interrupted:
      continue; // loop top re-checks the signal flag
    }
    if (Line.empty() || Line[0] == '#')
      continue; // blank lines and comments keep scripted sessions readable
    ++St.LineSeq;
    if (!handleRequest(St, Base, Line, Ch))
      return LoopExit::Shutdown;
  }
}

struct ServeFlags {
  service::ListenSpec Listen;
  uint64_t ReadTimeoutMs = 0; ///< 0 = never time a connection out
  uint64_t MaxLineBytes = service::DefaultMaxLineBytes;
  std::string MetricsPath;
};

int serve(const Config &Base, const ServeFlags &F) {
  service::AnalysisService::Options Opts;
  Opts.Base = Base;
  Opts.AutoDispatch = false; // jobs run inside "drain": stable transcripts
  ServerState St;
  St.Svc = std::make_unique<service::AnalysisService>(std::move(Opts));

  if (F.Listen.K == service::ListenSpec::Kind::Stdio) {
    service::LineChannel Ch(0, 1, /*OwnsFds=*/false, F.MaxLineBytes);
    requestLoop(St, Base, Ch, /*ReadTimeoutMs=*/-1);
  } else {
    service::Listener L;
    std::string Err;
    if (!service::Listener::open(F.Listen, L, Err)) {
      std::cerr << "error: " << Err << "\n";
      return 1;
    }
    int ConnTimeout =
        F.ReadTimeoutMs ? static_cast<int>(F.ReadTimeoutMs) : -1;
    bool Running = true;
    while (Running && !GShutdownSignal) {
      bool TimedOut = false, Interrupted = false;
      service::LineChannel Ch =
          L.acceptChannel(/*TimeoutMs=*/500, TimedOut, Interrupted,
                          F.MaxLineBytes);
      if (!Ch.valid())
        continue; // timeout/EINTR: re-check the shutdown flag
      switch (requestLoop(St, Base, Ch, ConnTimeout)) {
      case LoopExit::Shutdown:
      case LoopExit::Signalled:
        Running = false;
        break;
      case LoopExit::Disconnected:
        break; // the service outlives the connection; accept the next
      }
    }
  }

  // Graceful shutdown - identical for the "shutdown" op, EOF, and
  // SIGTERM/SIGINT: any in-flight batch has already finished (the request
  // loop only returns between requests), the metrics dump is written, and
  // destroying the service writes the --trace-jsonl/--trace-chrome
  // artifacts and completes still-pending jobs as Cancelled.
  if (!F.MetricsPath.empty())
    support::MetricRegistry::global().writePrometheusFile(F.MetricsPath);
  St.Svc.reset();
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // OPTABS_* environment overrides seed the flag defaults (fromEnv), so
  // an explicit flag always wins over the environment, which wins over
  // Config::defaults(). Malformed env values are reported, not fatal.
  std::vector<ConfigError> EnvErrors;
  Config Base = Config::fromEnv(&EnvErrors);
  if (!EnvErrors.empty())
    std::cerr << formatConfigErrors(EnvErrors);
  uint64_t Threads = Base.Execution.NumThreads;
  uint64_t CacheCapacity = Base.Execution.ForwardCacheCapacity;
  uint64_t MaxSessions = Base.Service.MaxSessions;
  uint64_t Incremental = Base.Service.IncrementalReRegister ? 1 : 0;
  std::string CacheDir = Base.Service.CacheDir;
  uint64_t SpillBytes = Base.Service.SpillBytes;
  uint64_t PersistOnShutdown = Base.Service.PersistOnShutdown ? 1 : 0;
  uint64_t TraceCapacity =
      Base.Observability.ServiceTrace ? Base.Observability.ServiceTraceCapacity
                                      : 0;
  ServeFlags F;
  F.MetricsPath = Base.Observability.MetricsPath;
  std::string Listen = "stdio";
  std::string TraceJsonl = Base.Observability.ServiceTraceJsonlPath;
  std::string TraceChrome = Base.Observability.ServiceTraceChromePath;
  double TraceSlowMs = Base.Observability.SlowQuerySeconds * 1000;
  support::ArgParser Parser;
  Parser.option("--listen", &Listen,
                "transport: stdio (default), unix:PATH, or tcp:PORT");
  Parser.option("--threads", &Threads, "shared pool workers (0 = hardware)");
  Parser.option("--cache-capacity", &CacheCapacity,
                "forward-run cache entries per shard (0 = unbounded)");
  Parser.option("--max-sessions", &MaxSessions, "open-session quota");
  Parser.option("--metrics", &F.MetricsPath, "Prometheus dump on shutdown");
  Parser.option("--incremental", &Incremental,
                "diff-based incremental re-registration (0 = evict all)");
  Parser.option("--cache-dir", &CacheDir,
                "on-disk cache tier: snapshots + spill files (empty = off)");
  Parser.option("--spill-bytes", &SpillBytes,
                "spill-tier byte budget (0 = unbounded)");
  Parser.option("--persist-on-shutdown", &PersistOnShutdown,
                "snapshot every program on graceful shutdown (0|1)");
  Parser.option("--read-timeout-ms", &F.ReadTimeoutMs,
                "drop a socket connection silent this long (0 = never)");
  Parser.option("--max-line-bytes", &F.MaxLineBytes,
                "per-line size cap; longer lines get a structured error");
  Parser.option("--trace-capacity", &TraceCapacity,
                "flight-recorder ring size; > 0 enables request tracing");
  Parser.option("--trace-jsonl", &TraceJsonl,
                "JSONL trace dump on shutdown (enables tracing)");
  Parser.option("--trace-chrome", &TraceChrome,
                "merged Chrome trace dump on shutdown (enables tracing)");
  Parser.option("--trace-slow-ms", &TraceSlowMs,
                "slow-query threshold in milliseconds (enables tracing)");
  std::string Err;
  if (!Parser.parse(Argc, Argv, Err)) {
    std::cerr << "error: " << Err << "\n"
              << "usage: optabs-serve [--listen=unix:PATH|tcp:PORT] "
                 "[--threads=N] [--cache-capacity=N] "
                 "[--max-sessions=N] [--metrics=PATH] [--incremental=0|1] "
                 "[--cache-dir=PATH] [--spill-bytes=N] "
                 "[--persist-on-shutdown=0|1] "
                 "[--read-timeout-ms=N] [--max-line-bytes=N] "
                 "[--trace-capacity=N] [--trace-jsonl=PATH] "
                 "[--trace-chrome=PATH] [--trace-slow-ms=X]\n";
    return 2;
  }
  if (!service::ListenSpec::parse(Listen, F.Listen, Err)) {
    std::cerr << "error: " << Err << "\n";
    return 2;
  }
  Base.Execution.NumThreads = static_cast<unsigned>(Threads);
  Base.Execution.ForwardCacheCapacity = static_cast<size_t>(CacheCapacity);
  Base.Service.MaxSessions = static_cast<unsigned>(MaxSessions);
  Base.Service.IncrementalReRegister = Incremental != 0;
  Base.Service.CacheDir = CacheDir;
  Base.Service.SpillBytes = SpillBytes;
  Base.Service.PersistOnShutdown = PersistOnShutdown != 0;
  if (TraceCapacity > 0) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceCapacity =
        static_cast<size_t>(TraceCapacity);
  }
  if (!TraceJsonl.empty()) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceJsonlPath = TraceJsonl;
  }
  if (!TraceChrome.empty()) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceChromePath = TraceChrome;
  }
  if (TraceSlowMs > 0) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.SlowQuerySeconds = TraceSlowMs / 1000.0;
  }
  Base.Observability.MetricsPath = F.MetricsPath;
  if (!F.MetricsPath.empty())
    support::setMetricsEnabled(true);
  installSignalHandlers();
  return serve(Base, F);
}
