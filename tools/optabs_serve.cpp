//===- optabs_serve.cpp - JSONL analysis server over stdin/stdout ---------===//
//
// A long-lived front end to service::AnalysisService speaking the
// versioned JSONL protocol of service/Protocol.h: one request object per
// stdin line, one (or, for "drain", several) response objects per stdout
// line. See the Protocol.h file comment for the operation reference and
// README.md for a quick-start transcript.
//
//   optabs-serve [--threads=N] [--cache-capacity=N] [--max-sessions=N]
//                [--metrics=PATH] [--incremental=0|1] [--trace-capacity=N]
//                [--trace-jsonl=PATH] [--trace-chrome=PATH]
//                [--trace-slow-ms=X]
//
// --incremental (default 1) controls diff-based incremental
// re-registration (Config::ServiceConfig::IncrementalReRegister). With it
// on, re-registering a program reports the dirty procedure set and the
// stats op reports migration counters; with it off the server reproduces
// the historical evict-everything transcript byte for byte.
//
// Request tracing: any --trace-* flag (or OPTABS_SERVICE_TRACE=1) turns
// on the service flight recorder. Every protocol line mints a trace
// context (trace id = line sequence number), so a job's whole lifecycle -
// admission, batching, driver phases, cache attribution, fulfilment - can
// be pulled back out with the "trace" op (drains the recorder) or the
// "explain" op (one job's timeline). --trace-jsonl / --trace-chrome dump
// the recorder on shutdown; --trace-slow-ms logs jobs whose end-to-end
// latency exceeds the threshold. Flag defaults seed from OPTABS_*
// environment overrides, so precedence is flags > environment > defaults.
//
// The server runs the service with AutoDispatch off: submitted jobs are
// queued and only execute inside "drain", which then emits every finished
// job's result in job-id order. Responses carry no wall-clock fields, so a
// scripted session always produces a byte-identical transcript - CI boots
// this binary, pipes tools/testdata/serve_session.jsonl through it, and
// diffs the output against the checked-in golden file.
//
//===----------------------------------------------------------------------===//

#include <optabs/optabs.h>

#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace optabs;
using tracer::JsonObject;

namespace {

struct ServerState {
  std::unique_ptr<service::AnalysisService> Svc;
  std::map<uint64_t, service::Session> Sessions;
  /// Futures of every accepted job, in submission (= job-id) order;
  /// drained and cleared by the "drain" op.
  std::vector<std::future<service::QueryResult>> InFlight;
};

void emit(const JsonObject &O) { std::cout << O.str() << "\n" << std::flush; }

/// Reads the per-session configuration fields of an "open-session"
/// request into \p C. Returns false (with \p Err) on an unknown strategy
/// or a non-integer where an integer belongs.
bool readSessionConfig(const service::JsonLine &Req, Config &C,
                       std::string &Err) {
  struct UIntField {
    const char *Key;
    uint64_t *Out;
  };
  uint64_t K = C.Execution.K, MaxIters = C.Execution.MaxItersPerQuery;
  uint64_t Traces = C.Execution.TracesPerIteration;
  uint64_t StepBudget = 0;
  uint64_t MaxPending = C.Service.MaxPendingPerSession;
  uint64_t MaxJobs = C.Service.MaxJobsPerSession;
  for (UIntField F : {UIntField{"k", &K}, UIntField{"max-iters", &MaxIters},
                      UIntField{"traces-per-iter", &Traces},
                      UIntField{"step-budget", &StepBudget},
                      UIntField{"max-pending", &MaxPending},
                      UIntField{"max-jobs", &MaxJobs}}) {
    if (!Req.has(F.Key))
      continue;
    auto V = Req.getUInt(F.Key);
    if (!V) {
      Err = std::string("field '") + F.Key + "' must be an unsigned integer";
      return false;
    }
    *F.Out = *V;
  }
  C.Execution.K = static_cast<unsigned>(K);
  C.Execution.MaxItersPerQuery = static_cast<unsigned>(MaxIters);
  C.Execution.TracesPerIteration = static_cast<unsigned>(Traces);
  if (StepBudget > 0) {
    C.Budgets.ForwardStepBudget = StepBudget;
    C.Budgets.BackwardStepBudget = StepBudget;
    C.Budgets.SolverDecisionBudget = StepBudget;
  }
  C.Service.MaxPendingPerSession = static_cast<unsigned>(MaxPending);
  C.Service.MaxJobsPerSession = MaxJobs;
  if (auto S = Req.getString("strategy"))
    C.Execution.Strategy = *S;
  // Config::validate() (run by openSession) rejects unknown strategies and
  // inconsistent combinations with structured errors.
  return true;
}

void emitResult(const service::QueryResult &R) {
  JsonObject O = service::response(true);
  O.field("op", "result");
  O.field("job", R.Job);
  O.field("session", R.Session);
  O.field("status", service::jobStatusName(R.Status));
  if (R.Status == service::JobStatus::Done) {
    O.field("verdict", tracer::verdictName(R.V));
    O.field("iterations", R.Iterations);
    if (R.V == tracer::Verdict::Proven) {
      O.field("cost", R.CheapestCost);
      O.field("param", R.CheapestParam);
    }
    if (!R.ExhaustedResource.empty()) {
      O.field("exhausted", R.ExhaustedResource);
      O.field("site", R.ExhaustedSite);
    }
  } else {
    O.field("error", R.Error);
  }
  emit(O);
}

int serve(const Config &Base, const std::string &MetricsPath) {
  service::AnalysisService::Options Opts;
  Opts.Base = Base;
  Opts.AutoDispatch = false; // jobs run inside "drain": stable transcripts
  ServerState St;
  St.Svc = std::make_unique<service::AnalysisService>(std::move(Opts));

  std::string Line;
  uint64_t LineSeq = 0; ///< per-request trace id (comments don't count)
  while (std::getline(std::cin, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue; // blank lines and comments keep scripted sessions readable
    ++LineSeq;
    service::JsonLine Req;
    std::string Err;
    if (!service::JsonLine::parse(Line, Req, Err)) {
      emit(JsonObject(service::response(false))
               .field("error", "malformed request: " + Err));
      continue;
    }
    auto Op = Req.getString("op");
    if (!Op) {
      emit(JsonObject(service::response(false))
               .field("error", "missing 'op' field"));
      continue;
    }

    if (*Op == "register-program") {
      auto Name = Req.getString("name");
      auto Text = Req.getString("text");
      if (!Name || !Text) {
        std::cout << service::errorLine(
                         *Op, "register-program needs 'name' and 'text'")
                  << "\n"
                  << std::flush;
        continue;
      }
      service::RegisterResult R = St.Svc->registerProgram(*Name, *Text);
      if (!R.Ok) {
        std::cout << service::errorLine(*Op, R.Error) << "\n" << std::flush;
        continue;
      }
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("name", *Name);
      O.field("epoch", R.Epoch);
      O.field("checks", R.Checks);
      O.field("allocs", R.Allocs);
      // The dirty set of a re-registration, only under --incremental=1 so
      // the legacy transcript stays byte-identical with the feature off.
      if (R.ReRegistered && Base.Service.IncrementalReRegister) {
        O.field("incremental", R.Incremental);
        O.field("dirty_checks", R.DirtyChecks);
        if (R.Incremental) {
          O.field("dirty_procs", R.DirtyProcs.size());
          std::string Joined;
          for (const std::string &P : R.DirtyProcs) {
            if (!Joined.empty())
              Joined += ',';
            Joined += P;
          }
          O.field("dirty", Joined);
        }
      }
      emit(O);
    } else if (*Op == "open-session") {
      service::SessionSpec Spec;
      Spec.SessionConfig = Config::defaults();
      if (auto P = Req.getString("program"))
        Spec.Program = *P;
      if (auto C = Req.getString("client"))
        Spec.Client = *C;
      if (auto P = Req.getString("property"))
        Spec.Property = *P;
      std::string CfgErr;
      if (!readSessionConfig(Req, Spec.SessionConfig, CfgErr)) {
        std::cout << service::errorLine(*Op, CfgErr) << "\n" << std::flush;
        continue;
      }
      std::string OpenErr;
      service::Session S = St.Svc->openSession(Spec, OpenErr);
      if (!S.valid()) {
        std::cout << service::errorLine(*Op, OpenErr) << "\n" << std::flush;
        continue;
      }
      St.Sessions[S.id()] = S;
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("session", S.id());
      emit(O);
    } else if (*Op == "submit") {
      auto Sess = Req.getUInt("session");
      auto Check = Req.getUInt("check");
      if (!Sess || !Check) {
        std::cout << service::errorLine(*Op,
                                        "submit needs 'session' and 'check'")
                  << "\n"
                  << std::flush;
        continue;
      }
      auto It = St.Sessions.find(*Sess);
      if (It == St.Sessions.end()) {
        std::cout << service::errorLine(
                         *Op, "unknown session " + std::to_string(*Sess))
                  << "\n"
                  << std::flush;
        continue;
      }
      service::JobSpec Job;
      Job.Check = static_cast<uint32_t>(*Check);
      if (auto Site = Req.getUInt("site"))
        Job.Site = static_cast<uint32_t>(*Site);
      if (auto Prio = Req.getInt("priority"))
        Job.Priority = static_cast<int32_t>(*Prio);
      // Protocol ingress mints the request's trace identity: the line
      // sequence number, stable across reruns of the same script.
      Job.Parent.TraceId = LineSeq;
      Job.Parent.SpanId = LineSeq;
      uint64_t JobId = 0;
      std::future<service::QueryResult> F = It->second.submit(Job, &JobId);
      if (JobId == 0) {
        // Rejected synchronously: the ready future carries the reason.
        service::QueryResult R = F.get();
        JsonObject O = service::response(false);
        O.field("op", *Op);
        O.field("status", service::jobStatusName(R.Status));
        O.field("error", R.Error);
        emit(O);
        continue;
      }
      St.InFlight.push_back(std::move(F));
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("job", JobId);
      emit(O);
    } else if (*Op == "cancel") {
      auto Sess = Req.getUInt("session");
      auto It = Sess ? St.Sessions.find(*Sess) : St.Sessions.end();
      if (It == St.Sessions.end()) {
        std::cout << service::errorLine(*Op, "unknown session") << "\n"
                  << std::flush;
        continue;
      }
      size_t N = It->second.cancelPending();
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("cancelled", N);
      emit(O);
    } else if (*Op == "close-session") {
      auto Sess = Req.getUInt("session");
      auto It = Sess ? St.Sessions.find(*Sess) : St.Sessions.end();
      if (It == St.Sessions.end()) {
        std::cout << service::errorLine(*Op, "unknown session") << "\n"
                  << std::flush;
        continue;
      }
      It->second.close();
      St.Sessions.erase(It);
      JsonObject O = service::response(true);
      O.field("op", *Op);
      emit(O);
    } else if (*Op == "drain") {
      St.Svc->drain();
      for (std::future<service::QueryResult> &F : St.InFlight)
        emitResult(F.get());
      size_t N = St.InFlight.size();
      St.InFlight.clear();
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("results", N);
      emit(O);
    } else if (*Op == "stats") {
      service::ServiceStats S = St.Svc->stats();
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("programs", S.ProgramsRegistered);
      O.field("sessions_opened", S.SessionsOpened);
      O.field("sessions_closed", S.SessionsClosed);
      O.field("submitted", S.JobsSubmitted);
      O.field("rejected", S.JobsRejected);
      O.field("cancelled", S.JobsCancelled);
      O.field("completed", S.JobsCompleted);
      O.field("failed", S.JobsFailed);
      O.field("batches", S.Batches);
      O.field("coalesced", S.CoalescedJobs);
      O.field("queue_depth", S.QueueDepth);
      O.field("forward_runs", S.ForwardRuns);
      O.field("backward_runs", S.BackwardRuns);
      O.field("cache_hits", S.CacheHits);
      O.field("cache_misses", S.CacheMisses);
      O.field("cache_evictions", S.CacheEvictions);
      O.field("stale_invalidated", S.StaleEntriesInvalidated);
      if (Base.Service.IncrementalReRegister) {
        O.field("entries_migrated", S.EntriesMigrated);
        O.field("entries_invalidated", S.EntriesInvalidated);
        O.field("procs_dirty", S.ProceduresDirty);
        O.field("verdicts_replayed", S.VerdictsReplayed);
      }
      std::string Pending;
      for (const auto &[Id, N] : S.PendingBySession) {
        if (!Pending.empty())
          Pending += ',';
        Pending += std::to_string(Id) + ":" + std::to_string(N);
      }
      O.field("pending_by_session", Pending);
      O.field("batch_jobs_p50", S.BatchJobsP50);
      O.field("batch_jobs_p90", S.BatchJobsP90);
      O.field("batch_jobs_p99", S.BatchJobsP99);
      O.field("fixpoints_amortized", S.FixpointsAmortized);
      O.field("slow_queries", S.SlowQueries);
      emit(O);
    } else if (*Op == "trace") {
      if (!St.Svc->tracingEnabled()) {
        std::cout << service::errorLine(
                         *Op, "tracing is disabled (enable with "
                              "--trace-capacity=N or OPTABS_SERVICE_TRACE=1)")
                  << "\n"
                  << std::flush;
        continue;
      }
      // Dropped count first: drain() empties the ring but the overflow
      // counter keeps the history.
      uint64_t Dropped = St.Svc->traceDropped();
      std::vector<support::TraceEvent> Events = St.Svc->drainTrace();
      for (const support::TraceEvent &E : Events) {
        JsonObject O = service::response(true);
        O.field("op", "trace-event");
        O.field("seq", E.Seq);
        O.field("kind", E.Kind);
        O.field("trace", E.TraceId);
        O.field("span", E.SpanId);
        O.field("job", E.Job);
        O.field("session", E.Session);
        O.field("batch", E.Batch);
        O.field("ts_ns", E.TsNs);
        O.field("u0", E.U0);
        O.field("u1", E.U1);
        O.field("seconds", E.D0);
        O.field("note", E.Note);
        emit(O);
      }
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("events", Events.size());
      O.field("dropped", Dropped);
      emit(O);
    } else if (*Op == "explain") {
      auto JobN = Req.getUInt("job");
      if (!JobN) {
        std::cout << service::errorLine(*Op, "explain needs 'job'") << "\n"
                  << std::flush;
        continue;
      }
      service::JobTimeline T = St.Svc->explain(*JobN);
      if (!T.Found) {
        std::cout << service::errorLine(
                         *Op, "no timeline for job " + std::to_string(*JobN) +
                                  " (tracing disabled, job never admitted, "
                                  "or entry evicted)")
                  << "\n"
                  << std::flush;
        continue;
      }
      JsonObject O = service::response(true);
      O.field("op", *Op);
      O.field("job", T.Job);
      O.field("session", T.Session);
      O.field("check", T.Check);
      O.field("site", T.Site);
      O.field("status", T.Status);
      if (!T.Verdict.empty())
        O.field("verdict", T.Verdict);
      O.field("batch", T.Batch);
      O.field("peers", T.Peers);
      O.field("queue_wait_ns", T.queueWaitNs());
      O.field("batch_wait_ns", T.batchWaitNs());
      O.field("run_ns", T.runNs());
      O.field("e2e_ns", T.endToEndNs());
      O.field("plan_s", T.PlanS);
      O.field("forward_s", T.ForwardS);
      O.field("classify_s", T.ClassifyS);
      O.field("extract_s", T.ExtractS);
      O.field("backward_s", T.BackwardS);
      O.field("merge_s", T.MergeS);
      O.field("cache_hits", T.CacheHits);
      O.field("cache_misses", T.CacheMisses);
      O.field("replayed", T.Replayed);
      if (T.Replayed) {
        O.field("data_epoch", T.ReplayDataEpoch);
        O.field("clean_footprint", T.CleanFootprint);
      }
      emit(O);
    } else if (*Op == "shutdown") {
      JsonObject O = service::response(true);
      O.field("op", *Op);
      emit(O);
      break;
    } else {
      std::cout << service::errorLine(*Op, "unknown op '" + *Op + "'")
                << "\n"
                << std::flush;
    }
  }

  if (!MetricsPath.empty())
    support::MetricRegistry::global().writePrometheusFile(MetricsPath);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  // OPTABS_* environment overrides seed the flag defaults (fromEnv), so
  // an explicit flag always wins over the environment, which wins over
  // Config::defaults(). Malformed env values are reported, not fatal.
  std::vector<ConfigError> EnvErrors;
  Config Base = Config::fromEnv(&EnvErrors);
  if (!EnvErrors.empty())
    std::cerr << formatConfigErrors(EnvErrors);
  uint64_t Threads = Base.Execution.NumThreads;
  uint64_t CacheCapacity = Base.Execution.ForwardCacheCapacity;
  uint64_t MaxSessions = Base.Service.MaxSessions;
  uint64_t Incremental = Base.Service.IncrementalReRegister ? 1 : 0;
  uint64_t TraceCapacity =
      Base.Observability.ServiceTrace ? Base.Observability.ServiceTraceCapacity
                                      : 0;
  std::string MetricsPath = Base.Observability.MetricsPath;
  std::string TraceJsonl = Base.Observability.ServiceTraceJsonlPath;
  std::string TraceChrome = Base.Observability.ServiceTraceChromePath;
  double TraceSlowMs = Base.Observability.SlowQuerySeconds * 1000;
  support::ArgParser Parser;
  Parser.option("--threads", &Threads, "shared pool workers (0 = hardware)");
  Parser.option("--cache-capacity", &CacheCapacity,
                "forward-run cache entries per shard (0 = unbounded)");
  Parser.option("--max-sessions", &MaxSessions, "open-session quota");
  Parser.option("--metrics", &MetricsPath, "Prometheus dump on shutdown");
  Parser.option("--incremental", &Incremental,
                "diff-based incremental re-registration (0 = evict all)");
  Parser.option("--trace-capacity", &TraceCapacity,
                "flight-recorder ring size; > 0 enables request tracing");
  Parser.option("--trace-jsonl", &TraceJsonl,
                "JSONL trace dump on shutdown (enables tracing)");
  Parser.option("--trace-chrome", &TraceChrome,
                "merged Chrome trace dump on shutdown (enables tracing)");
  Parser.option("--trace-slow-ms", &TraceSlowMs,
                "slow-query threshold in milliseconds (enables tracing)");
  std::string Err;
  if (!Parser.parse(Argc, Argv, Err)) {
    std::cerr << "error: " << Err << "\n"
              << "usage: optabs-serve [--threads=N] [--cache-capacity=N] "
                 "[--max-sessions=N] [--metrics=PATH] [--incremental=0|1] "
                 "[--trace-capacity=N] [--trace-jsonl=PATH] "
                 "[--trace-chrome=PATH] [--trace-slow-ms=X]\n";
    return 2;
  }
  Base.Execution.NumThreads = static_cast<unsigned>(Threads);
  Base.Execution.ForwardCacheCapacity = static_cast<size_t>(CacheCapacity);
  Base.Service.MaxSessions = static_cast<unsigned>(MaxSessions);
  Base.Service.IncrementalReRegister = Incremental != 0;
  if (TraceCapacity > 0) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceCapacity =
        static_cast<size_t>(TraceCapacity);
  }
  if (!TraceJsonl.empty()) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceJsonlPath = TraceJsonl;
  }
  if (!TraceChrome.empty()) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.ServiceTraceChromePath = TraceChrome;
  }
  if (TraceSlowMs > 0) {
    Base.Observability.ServiceTrace = true;
    Base.Observability.SlowQuerySeconds = TraceSlowMs / 1000.0;
  }
  Base.Observability.MetricsPath = MetricsPath;
  if (!MetricsPath.empty())
    support::setMetricsEnabled(true);
  return serve(Base, MetricsPath);
}
