# Boots optabs-serve, pipes a scripted JSONL session through it, and
# fails unless stdout is byte-identical to the checked-in golden
# transcript. Invoked by the ServeGoldenTranscript tests (and the CI serve
# step) as:
#
#   cmake -DSERVE=<binary> -DINPUT=<session.jsonl> -DGOLDEN=<golden>
#         -DACTUAL=<scratch output> [-DEXTRA_ARGS=<flag;flag...>]
#         [-DSCRUB=1] -P RunServeTranscript.cmake
#
# SCRUB=1 zeroes wall-clock fields in the actual output before the
# comparison: every "*_ns" and "*_s" value and the trace events' "seconds"
# field. Everything else in a trace/explain response (event kinds, causal
# order, batch ids, peer counts, cache attribution) is deterministic, so
# the golden is checked in pre-scrubbed and the diff stays byte-exact.

if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
# CLEAN_DIR: recreated empty before the run. The cache transcript points
# --cache-dir here, so every run starts cold and the persist/load/spill
# counters in the golden stay exact.
if(DEFINED CLEAN_DIR AND NOT CLEAN_DIR STREQUAL "")
  file(REMOVE_RECURSE ${CLEAN_DIR})
  file(MAKE_DIRECTORY ${CLEAN_DIR})
endif()
execute_process(
  COMMAND ${SERVE} --threads=2 ${EXTRA_ARGS}
  INPUT_FILE ${INPUT}
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "optabs-serve exited with status ${RC}")
endif()

if(DEFINED SCRUB AND SCRUB)
  file(READ ${ACTUAL} RAW)
  string(REGEX REPLACE "\"([a-z0-9_]*_ns)\":[0-9]+" "\"\\1\":0" RAW "${RAW}")
  string(REGEX REPLACE "\"([a-z0-9_]*_s)\":[0-9.eE+-]+" "\"\\1\":0"
         RAW "${RAW}")
  string(REGEX REPLACE "\"seconds\":[0-9.eE+-]+" "\"seconds\":0"
         RAW "${RAW}")
  file(WRITE ${ACTUAL} "${RAW}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${ACTUAL} ${GOLDEN}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  file(READ ${ACTUAL} ACTUAL_TEXT)
  file(READ ${GOLDEN} GOLDEN_TEXT)
  message(FATAL_ERROR "serve transcript diverged from ${GOLDEN}\n"
                      "--- expected ---\n${GOLDEN_TEXT}\n"
                      "--- actual ---\n${ACTUAL_TEXT}")
endif()
