# Boots optabs-serve, pipes a scripted JSONL session through it, and
# fails unless stdout is byte-identical to the checked-in golden
# transcript. Invoked by the ServeGoldenTranscript tests (and the CI serve
# step) as:
#
#   cmake -DSERVE=<binary> -DINPUT=<session.jsonl> -DGOLDEN=<golden>
#         -DACTUAL=<scratch output> [-DEXTRA_ARGS=<flag;flag...>]
#         -P RunServeTranscript.cmake

if(NOT DEFINED EXTRA_ARGS)
  set(EXTRA_ARGS "")
endif()
execute_process(
  COMMAND ${SERVE} --threads=2 ${EXTRA_ARGS}
  INPUT_FILE ${INPUT}
  OUTPUT_FILE ${ACTUAL}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "optabs-serve exited with status ${RC}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${ACTUAL} ${GOLDEN}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  file(READ ${ACTUAL} ACTUAL_TEXT)
  file(READ ${GOLDEN} GOLDEN_TEXT)
  message(FATAL_ERROR "serve transcript diverged from ${GOLDEN}\n"
                      "--- expected ---\n${GOLDEN_TEXT}\n"
                      "--- actual ---\n${ACTUAL_TEXT}")
endif()
