//===- optabs_shardd.cpp - Multi-process shard supervisor -----------------===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `optabs-shardd`: speaks the same versioned JSONL protocol as
/// `optabs-serve`, but fans the work out over N worker processes (each an
/// `optabs-serve --listen=unix:...`), restarting dead or hung ones and
/// requeueing their jobs. All supervision logic lives in
/// service/ShardRouter.{h,cpp}; this file is flag parsing plus the IO
/// loop. See DESIGN.md §13 for the topology and failure model.
///
///   optabs-shardd --shards=4 --worker-threads=2 < session.jsonl
///   optabs-shardd --shards=4 --listen=unix:/run/optabs.sock
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"
#include "service/ShardRouter.h"
#include "service/Transport.h"
#include "support/Args.h"

#include <csignal>
#include <iostream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace optabs;

namespace {

volatile sig_atomic_t GShutdownSignal = 0;

void onShutdownSignal(int Sig) { GShutdownSignal = Sig; }

void installSignalHandlers() {
  struct sigaction SA;
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: blocking reads return EINTR
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  signal(SIGPIPE, SIG_IGN);
}

/// The directory this binary lives in, so the default worker path is the
/// sibling optabs-serve regardless of the caller's cwd.
std::string selfDirectory() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return ".";
  Buf[N] = '\0';
  std::string Path(Buf);
  size_t Slash = Path.rfind('/');
  return Slash == std::string::npos ? "." : Path.substr(0, Slash);
}

/// Serves one connection; returns false when the session asked the whole
/// supervisor to shut down (or a signal arrived).
bool requestLoop(service::ShardRouter &Router, service::LineChannel &Ch,
                 int ReadTimeoutMs) {
  std::string Line;
  std::vector<std::string> Out;
  for (;;) {
    if (GShutdownSignal)
      return false;
    service::LineChannel::ReadStatus RS = Ch.readLine(Line, ReadTimeoutMs);
    switch (RS) {
    case service::LineChannel::ReadStatus::Line:
      break;
    case service::LineChannel::ReadStatus::Eof:
    case service::LineChannel::ReadStatus::Error:
      return true;
    case service::LineChannel::ReadStatus::Timeout:
      Ch.writeLine(service::errorLine(
          "", "read timeout after " + std::to_string(ReadTimeoutMs) +
                  "ms; closing connection"));
      return true;
    case service::LineChannel::ReadStatus::Overflow:
      Ch.writeLine(service::errorLine(
          "", "request line exceeds " + std::to_string(Ch.maxLineBytes()) +
                  " bytes; line dropped"));
      continue;
    case service::LineChannel::ReadStatus::Interrupted:
      continue; // loop top re-checks the signal flag
    }
    if (Line.empty() || Line[0] == '#')
      continue;
    Out.clear();
    bool KeepGoing = Router.handleLine(Line, Out);
    for (const std::string &Resp : Out)
      Ch.writeLine(Resp);
    if (!KeepGoing)
      return false;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  service::ShardRouterOptions RO;
  service::ProcessShardHost::Options HO;
  uint64_t Shards = 2;
  uint64_t WorkerThreads = 1;
  uint64_t RequestTimeoutMs = 120000;
  uint64_t Retries = RO.MaxRequestRetries;
  uint64_t BackoffInitialMs = RO.BackoffInitialMs;
  uint64_t BackoffMaxMs = RO.BackoffMaxMs;
  uint64_t BackoffResetMs = RO.BackoffResetMs;
  uint64_t ReadTimeoutMs = 0;
  uint64_t MaxLineBytes = service::DefaultMaxLineBytes;
  uint64_t StealThreshold = 0;
  bool Chaos = false;
  std::string Listen = "stdio";
  std::string Worker = selfDirectory() + "/optabs-serve";
  std::string SocketDir = "/tmp";
  std::string WorkerArgsJoined; // space-separated extra worker flags
  std::string CacheDir;         // shared on-disk tier for every worker
  uint64_t SpillBytes = 0;
  uint64_t PersistOnShutdown = 0;

  support::ArgParser Parser;
  Parser.option("--listen", &Listen,
                "supervisor transport: stdio (default), unix:PATH, tcp:PORT");
  Parser.option("--shards", &Shards, "number of optabs-serve workers");
  Parser.option("--worker", &Worker, "worker binary (default: sibling "
                                     "optabs-serve)");
  Parser.option("--worker-threads", &WorkerThreads,
                "--threads for each worker (0 = hardware)");
  Parser.option("--threads", &WorkerThreads,
                "alias for --worker-threads (drop-in for optabs-serve)");
  Parser.option("--worker-args", &WorkerArgsJoined,
                "extra flags for every worker, space separated");
  Parser.option("--socket-dir", &SocketDir, "where worker sockets live");
  Parser.option("--cache-dir", &CacheDir,
                "shared on-disk cache tier passed to every worker; stolen "
                "or restarted shards re-warm from it");
  Parser.option("--spill-bytes", &SpillBytes,
                "per-worker spill-tier byte budget (0 = unbounded)");
  Parser.option("--persist-on-shutdown", &PersistOnShutdown,
                "workers snapshot their programs on graceful shutdown (0|1)");
  Parser.option("--steal-threshold", &StealThreshold,
                "re-home sessions from a shard with this many pending jobs "
                "to an idle one at drain (0 = off)");
  Parser.option("--request-timeout-ms", &RequestTimeoutMs,
                "per-request deadline before a shard counts as hung");
  Parser.option("--retries", &Retries,
                "restart-and-retry attempts per request");
  Parser.option("--backoff-initial-ms", &BackoffInitialMs,
                "first restart delay");
  Parser.option("--backoff-max-ms", &BackoffMaxMs, "restart delay cap");
  Parser.option("--backoff-reset-ms", &BackoffResetMs,
                "healthy interval that resets the backoff ladder");
  Parser.option("--read-timeout-ms", &ReadTimeoutMs,
                "drop a silent client connection (0 = never)");
  Parser.option("--max-line-bytes", &MaxLineBytes,
                "per-line size cap; longer lines get a structured error");
  Parser.flag("--chaos", &Chaos,
              "accept {\"op\":\"chaos-kill\",\"shard\":K} (tests only)");
  std::string Err;
  if (!Parser.parse(Argc, Argv, Err)) {
    std::cerr << "error: " << Err << "\n"
              << "usage: optabs-shardd [--shards=N] [--worker=PATH] "
                 "[--worker-threads=N] [--worker-args=\"...\"] "
                 "[--listen=unix:PATH|tcp:PORT] [--socket-dir=DIR] "
                 "[--request-timeout-ms=N] [--retries=N] "
                 "[--backoff-initial-ms=N] [--backoff-max-ms=N] "
                 "[--backoff-reset-ms=N] [--read-timeout-ms=N] "
                 "[--max-line-bytes=N] [--cache-dir=DIR] [--spill-bytes=N] "
                 "[--persist-on-shutdown=0|1] [--steal-threshold=N] "
                 "[--chaos]\n";
    return 2;
  }
  service::ListenSpec ListenSpec;
  if (!service::ListenSpec::parse(Listen, ListenSpec, Err)) {
    std::cerr << "error: " << Err << "\n";
    return 2;
  }
  if (Shards == 0)
    Shards = 1;

  RO.NumShards = static_cast<unsigned>(Shards);
  RO.RequestTimeoutMs = static_cast<int>(RequestTimeoutMs);
  RO.MaxRequestRetries = static_cast<unsigned>(Retries);
  RO.BackoffInitialMs = BackoffInitialMs;
  RO.BackoffMaxMs = BackoffMaxMs;
  RO.BackoffResetMs = BackoffResetMs;
  RO.AllowChaosOps = Chaos;
  RO.StealThreshold = StealThreshold;

  HO.ServeBinary = Worker;
  HO.SocketDir = SocketDir;
  HO.MaxLineBytes = static_cast<size_t>(MaxLineBytes);
  HO.WorkerArgs.push_back("--threads=" + std::to_string(WorkerThreads));
  if (!CacheDir.empty()) {
    HO.WorkerArgs.push_back("--cache-dir=" + CacheDir);
    if (SpillBytes)
      HO.WorkerArgs.push_back("--spill-bytes=" + std::to_string(SpillBytes));
    if (PersistOnShutdown)
      HO.WorkerArgs.push_back("--persist-on-shutdown=1");
  }
  for (size_t I = 0; I < WorkerArgsJoined.size();) {
    size_t J = WorkerArgsJoined.find(' ', I);
    if (J == std::string::npos)
      J = WorkerArgsJoined.size();
    if (J > I)
      HO.WorkerArgs.push_back(WorkerArgsJoined.substr(I, J - I));
    I = J + 1;
  }

  installSignalHandlers();

  service::ProcessShardHost Host(HO);
  service::ShardRouter Router(RO, Host);
  if (!Router.start(Err)) {
    std::cerr << "error: " << Err << "\n";
    return 1;
  }

  bool CleanShutdown = true;
  if (ListenSpec.K == service::ListenSpec::Kind::Stdio) {
    service::LineChannel Ch(0, 1, /*OwnsFds=*/false,
                            static_cast<size_t>(MaxLineBytes));
    CleanShutdown = !requestLoop(Router, Ch, /*ReadTimeoutMs=*/-1);
  } else {
    service::Listener L;
    if (!service::Listener::open(ListenSpec, L, Err)) {
      std::cerr << "error: " << Err << "\n";
      return 1;
    }
    int ConnTimeout = ReadTimeoutMs ? static_cast<int>(ReadTimeoutMs) : -1;
    CleanShutdown = false;
    while (!GShutdownSignal) {
      bool TimedOut = false, Interrupted = false;
      service::LineChannel Ch = L.acceptChannel(
          /*TimeoutMs=*/500, TimedOut, Interrupted,
          static_cast<size_t>(MaxLineBytes));
      if (!Ch.valid())
        continue; // timeout/EINTR: re-check the shutdown flag
      if (!requestLoop(Router, Ch, ConnTimeout)) {
        CleanShutdown = true;
        break;
      }
      // EOF: the supervisor (and its workers) outlive the connection.
    }
  }

  // Signal or accept-loop exit without a shutdown op: run the same
  // graceful path the op runs, so workers drain and dump artifacts.
  if (!CleanShutdown || GShutdownSignal) {
    std::vector<std::string> Dropped;
    Router.handleLine("{\"op\":\"shutdown\"}", Dropped);
  }
  return 0;
}
