//===- optabs/optabs.h - The public optabs API surface ---------*- C++ -*-===//
//
// Part of the optabs project, a reproduction of "Finding Optimum
// Abstractions in Parametric Dataflow Analysis" (PLDI 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one header embedders include. Everything reachable from here is the
/// supported surface; headers under src/ that this file does not pull in
/// are internal and may change without notice (DESIGN.md §9 lists the
/// boundary explicitly). The tools in tools/ and the reporting harness
/// build exclusively against this header, which keeps the boundary honest:
/// anything they need has to be exported here first.
///
/// The surface, by layer:
///
///  * optabs::Config (+ ConfigError) - the unified configuration surface:
///    nested Execution / Budgets / Observability / Audit / Service
///    sections, validate(), and the single precedence chain
///    explicit > OPTABS_* environment > defaults (Config::fromEnv).
///  * optabs::support::ArgParser - the shared command-line parser, so
///    every tool rejects unknown flags and malformed values identically.
///  * optabs::ir - the mini-IR: Program, parseProgram, printProgram.
///  * optabs::pointer / escape / typestate - the analysis clients.
///  * optabs::tracer - QueryDriver, TracerOptions (a deprecated alias of
///    Config, see TracerOptions::fromConfig), Verdict/QueryOutcome, the
///    certificate checker, and the versioned JSONL event trace.
///  * optabs::service - AnalysisService, Session, QueryResult, and the
///    versioned JSONL request/response protocol of optabs-serve.
///
//===----------------------------------------------------------------------===//

#ifndef OPTABS_OPTABS_H
#define OPTABS_OPTABS_H

// Configuration and tool-support layer.
#include "support/Args.h"
#include "support/Budget.h"
#include "support/Config.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"

// The mini-IR and its textual format.
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Program.h"

// Analysis clients.
#include "escape/Escape.h"
#include "pointer/PointsTo.h"
#include "typestate/Typestate.h"

// The TRACER engine: driver, verdicts, certificates, event trace.
#include "tracer/Certificates.h"
#include "tracer/EventTrace.h"
#include "tracer/QueryDriver.h"

// The multi-tenant analysis service and its wire protocol.
#include "service/AnalysisService.h"
#include "service/Protocol.h"

#endif // OPTABS_OPTABS_H
