//===- bench_shard_scaling.cpp - Throughput vs worker shard count ---------===//
//
// Measures multi-process scaling through the shard supervisor: the same
// multi-tenant workload (distinct programs, one session and a batch of
// checks each) through a ShardRouter over real single-threaded
// `optabs-serve` workers at 1, 2, and 4 shards. Tenants spread over
// shards by the router's (program, client) hash, and the drain fans out
// to every shard before collecting, so independent workers run their
// batches concurrently.
//
// Because §6 grouping makes verdicts batch-composition-independent, every
// shard count must produce bitwise-identical result lines; the bench
// asserts that. The throughput gate (>= 1.7x at 2 shards vs 1) only
// applies with real hardware parallelism - on a single hardware thread
// the extra workers are pure oversubscription and the ratio is
// meaningless, so the gate is skipped and recorded as such.
// OPTABS_PERF_ADVISORY=1 demotes a gate failure to a report.
//
// Usage: bench_shard_scaling [out.json]   (default: BENCH_shards.json)
//
//===----------------------------------------------------------------------===//

#include "service/ShardRouter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "tracer/EventTrace.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace optabs;
using service::ProcessShardHost;
using service::ShardRouter;
using service::ShardRouterOptions;
using tracer::JsonObject;

namespace {

constexpr unsigned NumTenants = 8;
constexpr unsigned ProcsPerTenant = 14;

/// The figure-6 shape, one check per procedure, salted per tenant so the
/// programs (and their shard hashes) are distinct.
std::string makeProgram(unsigned Salt) {
  std::string Text = "proc main {\n";
  for (unsigned I = 1; I <= ProcsPerTenant; ++I)
    Text += "  call p" + std::to_string(I) + ";\n";
  Text += "}\n";
  for (unsigned I = 1; I <= ProcsPerTenant; ++I) {
    std::string N = std::to_string(I) + "t" + std::to_string(Salt);
    std::string P = std::to_string(I);
    Text += "proc p" + P + " {\n";
    Text += "  u" + P + " = new ha" + N + ";\n";
    Text += "  v" + P + " = new hb" + N + ";\n";
    Text += "  v" + P + ".f = u" + P + ";\n";
    Text += "  check(u" + P + ");\n";
    Text += "}\n";
  }
  return Text;
}

struct Run {
  unsigned Shards = 0;
  double Seconds = 0; ///< drain wall clock (the concurrent part)
  uint64_t Jobs = 0;
  uint64_t Restarts = 0;
  std::vector<std::string> Results;
};

Run runAtShardCount(unsigned Shards) {
  ProcessShardHost::Options HO;
  HO.ServeBinary = OPTABS_SERVE_BIN;
  HO.WorkerArgs = {"--threads=1"}; // scaling must come from processes
  ProcessShardHost Host(HO);
  ShardRouterOptions RO;
  RO.NumShards = Shards;
  ShardRouter R(RO, Host);
  std::string Err;
  if (!R.start(Err)) {
    std::cerr << "cannot start " << Shards << " shard(s): " << Err << "\n";
    std::abort();
  }

  Run Out;
  Out.Shards = Shards;
  std::vector<std::string> Resp;
  for (unsigned T = 0; T < NumTenants; ++T) {
    JsonObject Reg;
    Reg.field("op", "register-program");
    Reg.field("name", "tenant" + std::to_string(T));
    Reg.field("text", makeProgram(T));
    R.handleLine(Reg.str(), Resp);
    JsonObject Open;
    Open.field("op", "open-session");
    Open.field("program", "tenant" + std::to_string(T));
    Open.field("client", "escape");
    Open.field("k", 2);
    R.handleLine(Open.str(), Resp);
    for (unsigned C = 0; C < ProcsPerTenant; ++C) {
      JsonObject Sub;
      Sub.field("op", "submit");
      Sub.field("session", uint64_t(T + 1));
      Sub.field("check", C);
      R.handleLine(Sub.str(), Resp);
      ++Out.Jobs;
    }
  }

  std::vector<std::string> DrainOut;
  Timer T;
  R.handleLine("{\"op\":\"drain\"}", DrainOut);
  Out.Seconds = T.seconds();
  for (std::string &L : DrainOut)
    if (L.find("\"op\":\"result\"") != std::string::npos)
      Out.Results.push_back(std::move(L));
  Out.Restarts = R.stats().Restarts;

  std::vector<std::string> Dropped;
  R.handleLine("{\"op\":\"shutdown\"}", Dropped);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_shards.json";
  const unsigned HW = support::ThreadPool::hardwareWorkers();

  std::vector<Run> Runs;
  for (unsigned Shards : {1u, 2u, 4u})
    Runs.push_back(runAtShardCount(Shards));

  // Verdict identity across topologies, bitwise: the §6 grouping
  // argument, checked against real processes.
  bool Identical = true;
  for (const Run &R : Runs)
    Identical = Identical && R.Results == Runs[0].Results &&
                R.Jobs == R.Results.size() && R.Restarts == 0;

  double Speedup2 = Runs[1].Seconds > 0 && Runs[0].Seconds > 0
                        ? Runs[0].Seconds / Runs[1].Seconds
                        : 0;
  const bool GateApplies = HW > 1;
  bool GateOk = true;

  std::ofstream Out(OutPath);
  Out << "{\n"
      << "  \"benchmark\": \"shard_scaling\",\n"
      << "  \"tenants\": " << NumTenants << ",\n"
      << "  \"jobs\": " << Runs[0].Jobs << ",\n"
      << "  \"hardware_threads\": " << HW << ",\n"
      << "  \"speedup_2_shards\": " << Speedup2 << ",\n"
      << "  \"gate_applied\": " << (GateApplies ? "true" : "false") << ",\n"
      << "  \"results_identical\": " << (Identical ? "true" : "false")
      << ",\n"
      << "  \"runs\": [\n";
  for (size_t I = 0; I < Runs.size(); ++I) {
    const Run &R = Runs[I];
    double Jps = R.Seconds > 0 ? R.Jobs / R.Seconds : 0;
    Out << "    {\"shards\": " << R.Shards << ", \"drain_seconds\": "
        << R.Seconds << ", \"jobs_per_sec\": " << Jps << "}"
        << (I + 1 < Runs.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";

  for (const Run &R : Runs)
    std::cout << R.Shards << " shard(s): " << R.Jobs << " jobs in "
              << R.Seconds << "s ("
              << (R.Seconds > 0 ? R.Jobs / R.Seconds : 0) << " jobs/s)\n";
  std::cout << "2-shard speedup: " << Speedup2 << "x (hardware threads: "
            << HW << ")\n";
  std::cout << (Identical ? "result lines bitwise identical at every shard "
                            "count\n"
                          : "DETERMINISM VIOLATION: results differ across "
                            "shard counts\n");

  if (!Identical)
    return 1;
  if (GateApplies) {
    GateOk = Speedup2 >= 1.7;
    if (!GateOk) {
      std::cerr << "FAIL: 2-shard speedup " << Speedup2
                << "x is below the 1.7x gate\n";
      if (!std::getenv("OPTABS_PERF_ADVISORY"))
        return 1;
      std::cerr << "OPTABS_PERF_ADVISORY set - reporting only\n";
    }
  } else {
    std::cout << "single hardware thread: extra shards are pure "
              << "oversubscription; 1.7x gate skipped\n";
  }
  return 0;
}
