//===- bench_warm_restart.cpp - Warm-restart time to first verdict -----------===//
//
// The persistent cache tier's acceptance gate: on the 20-procedure suite
// (one escape check per procedure, the figure-6 shape), a service that
// restarts against a populated cache directory must reach its first
// verdict at least 3x faster than the cold start that populated it -
// with bitwise-identical verdicts, answered entirely by replay (zero
// forward fixpoints).
//
// Emits BENCH_warm.json and exits 1 when the speedup gate, the zero-
// recompute check, or the verdict-identity check fails.
// OPTABS_PERF_ADVISORY=1 demotes the speedup gate to a warning, matching
// bench/perf_smoke.py; the identity and recompute checks are never
// advisory.
//
// Usage: bench_warm_restart [OUTPUT_JSON]
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace optabs;

namespace {

constexpr unsigned NumProcs = 20;

/// main calls p01..p20; each procedure allocates two objects, links them
/// through a field (so every check needs a non-trivial abstraction), and
/// checks the reachable one. Same shape as bench_incremental.
std::string makeProgram() {
  std::string Text = "proc main {\n";
  for (unsigned I = 1; I <= NumProcs; ++I)
    Text += "  call p" + std::to_string(I) + ";\n";
  Text += "}\n";
  for (unsigned I = 1; I <= NumProcs; ++I) {
    std::string N = std::to_string(I);
    Text += "proc p" + N + " {\n";
    Text += "  u" + N + " = new ha" + N + ";\n";
    Text += "  v" + N + " = new hb" + N + ";\n";
    Text += "  v" + N + ".f = u" + N + ";\n";
    Text += "  check(u" + N + ");\n";
    Text += "}\n";
  }
  return Text;
}

struct Pass {
  std::vector<service::QueryResult> Results;
  double FirstVerdictSeconds = 0; ///< register -> first future resolved
  uint64_t ForwardRuns = 0;
  uint64_t VerdictsReplayed = 0;
};

/// One service lifetime against \p CacheDir: register (a warm start
/// loads snapshots here), submit every check, and time how long the
/// first verdict takes. When \p Persist, snapshot the caches before the
/// service dies (the artifact the next lifetime restarts from).
Pass runLife(const std::string &CacheDir, bool Persist) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Service.CacheDir = CacheDir;
  service::AnalysisService Svc(std::move(Opts));

  Pass P;
  Timer T;
  if (!Svc.registerProgram("p", makeProgram()).Ok)
    std::abort();
  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  if (!S.valid())
    std::abort();
  std::vector<std::future<service::QueryResult>> Futures;
  for (uint32_t C = 0; C < NumProcs; ++C)
    Futures.push_back(S.submit({C, 0, 0}));
  Svc.drain();
  Futures.front().wait();
  P.FirstVerdictSeconds = T.seconds();
  for (auto &F : Futures)
    P.Results.push_back(F.get());
  P.ForwardRuns = Svc.stats().ForwardRuns;
  P.VerdictsReplayed = Svc.stats().VerdictsReplayed;

  if (Persist) {
    service::CacheOpResult R = Svc.cacheOp("persist");
    if (!R.Ok) {
      std::cerr << "FAIL: persist refused: " << R.Error << "\n";
      std::abort();
    }
  }
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_warm.json";
  std::string CacheDir = "/tmp/optabs-bench-warm-" +
                         std::to_string(static_cast<long>(::getpid()));
  ::mkdir(CacheDir.c_str(), 0700);

  Pass Cold = runLife(CacheDir, /*Persist=*/true);
  Pass Warm = runLife(CacheDir, /*Persist=*/false);

  std::string Cleanup = "rm -rf '" + CacheDir + "'";
  if (::system(Cleanup.c_str()) != 0)
    std::cerr << "warning: could not remove " << CacheDir << "\n";

  bool Identical = Cold.Results.size() == Warm.Results.size();
  for (size_t I = 0; Identical && I < Cold.Results.size(); ++I) {
    const service::QueryResult &A = Cold.Results[I];
    const service::QueryResult &B = Warm.Results[I];
    Identical = A.Status == B.Status && A.V == B.V &&
                A.Iterations == B.Iterations &&
                A.CheapestCost == B.CheapestCost &&
                A.CheapestParam == B.CheapestParam;
    if (!Identical)
      std::cerr << "FAIL: verdict " << I
                << " diverged between the cold and warm lifetimes\n";
  }

  double Speedup = Warm.FirstVerdictSeconds > 0
                       ? Cold.FirstVerdictSeconds / Warm.FirstVerdictSeconds
                       : 0;
  std::ofstream Out(OutPath);
  Out << "{\n"
      << "  \"benchmark\": \"warm_restart\",\n"
      << "  \"procs\": " << NumProcs << ",\n"
      << "  \"checks\": " << NumProcs << ",\n"
      << "  \"cold_first_verdict_seconds\": " << Cold.FirstVerdictSeconds
      << ",\n"
      << "  \"warm_first_verdict_seconds\": " << Warm.FirstVerdictSeconds
      << ",\n"
      << "  \"speedup\": " << Speedup << ",\n"
      << "  \"cold_forward_runs\": " << Cold.ForwardRuns << ",\n"
      << "  \"warm_forward_runs\": " << Warm.ForwardRuns << ",\n"
      << "  \"verdicts_replayed\": " << Warm.VerdictsReplayed << "\n"
      << "}\n";

  std::cout << "warm restart: cold " << Cold.FirstVerdictSeconds << "s ("
            << Cold.ForwardRuns << " forward runs), warm "
            << Warm.FirstVerdictSeconds << "s (" << Warm.ForwardRuns
            << " forward runs, " << Warm.VerdictsReplayed
            << " verdicts replayed), speedup " << Speedup << "x\n";

  if (!Identical)
    return 1;
  // The warm lifetime must answer from the snapshot alone - a single
  // recomputed fixpoint means the load path silently dropped artifacts.
  if (Warm.ForwardRuns != 0) {
    std::cerr << "FAIL: warm lifetime recomputed " << Warm.ForwardRuns
              << " forward runs - the snapshot did not fully warm the "
                 "caches\n";
    return 1;
  }
  if (Speedup < 3.0) {
    std::cerr << "FAIL: warm-restart speedup " << Speedup
              << "x is below the 3x gate\n";
    if (!std::getenv("OPTABS_PERF_ADVISORY"))
      return 1;
    std::cerr << "OPTABS_PERF_ADVISORY set - reporting only\n";
  }
  return 0;
}
