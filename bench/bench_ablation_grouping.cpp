//===- bench_ablation_grouping.cpp - Ablation of the §6 grouping -------------===//
//
// §6 of the paper: the implementation maintains groups of unresolved
// queries with identical sets of unviable abstractions so that one forward
// run serves the whole group. This ablation compares grouping on/off on
// the thread-escape client. Shape expectation: grouping never increases
// and typically reduces the number of forward runs (the dominant cost),
// hence the total time.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "grouping", "time", "forward runs",
               "backward runs", "solver calls"});
  const auto &Suite = synth::paperSuite();
  for (size_t I = 0; I < 4; ++I) {
    for (bool Grouping : {true, false}) {
      synth::Benchmark B = synth::generate(Suite[I]);
      escape::EscapeAnalysis A(B.P);
      tracer::TracerOptions Options;
      Options.MaxItersPerQuery = 24;
      Options.GroupQueries = Grouping;
      tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
      Driver.run(B.EscChecks);
      T.addRow({Suite[I].Name, Grouping ? "on" : "off",
                TablePrinter::cell(Driver.totalSeconds(), 2) + "s",
                TablePrinter::cell((long long)Driver.stats().ForwardRuns),
                TablePrinter::cell((long long)Driver.stats().BackwardRuns),
                TablePrinter::cell((long long)Driver.stats().SolverCalls)});
    }
    T.addRule();
  }
  T.print(std::cout, "Ablation B: query grouping on/off (thread-escape)");
  return 0;
}
