//===- bench_ablation_underapprox.cpp - Ablation of §6's key claim ------------===//
//
// §6 of the paper: "We found that underapproximation is crucial to the
// scalability of our backward meta-analysis: disabling it caused our
// technique to timeout for all queries even on our smallest benchmark."
// This ablation runs the thread-escape analysis on the two smallest
// benchmarks with the beam search disabled (k = 0, exact backward
// formulas) against the paper's operating point (k = 5), under a fixed
// wall-clock budget, and reports resolution counts, time, and the largest
// backward formula tracked. Shape expectation: k = 0 tracks formulas that
// are orders of magnitude larger and resolves (far) fewer queries per
// second; at the paper's scale it times out outright.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;
using tracer::Verdict;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "k", "time", "resolved", "unresolved",
               "max formula (cubes)"});
  const auto &Suite = synth::paperSuite();
  for (size_t I = 0; I < 2; ++I) { // tsp, elevator
    for (unsigned K : {5u, 0u}) {
      synth::Benchmark B = synth::generate(Suite[I]);
      escape::EscapeAnalysis A(B.P);
      tracer::TracerOptions Options;
      Options.K = K;
      Options.MaxItersPerQuery = 24;
      Options.TimeBudgetSeconds = 30;
      Options.ProductSoftCap = K == 0 ? 0 : 4096; // exact mode: no soft caps
      Options.BackwardTimeoutSeconds = 5;
      tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
      auto Outcomes = Driver.run(B.EscChecks);
      unsigned Resolved = 0, Unresolved = 0;
      for (const auto &O : Outcomes)
        (O.V == Verdict::Unresolved ? Unresolved : Resolved) += 1;
      T.addRow({Suite[I].Name, K ? std::to_string(K) : std::string("off (exact)"),
                TablePrinter::cell(Driver.totalSeconds(), 2) + "s",
                TablePrinter::cell((long long)Resolved),
                TablePrinter::cell((long long)Unresolved),
                TablePrinter::cell(
                    (long long)Driver.stats().MaxFormulaCubes)});
    }
    T.addRule();
  }
  T.print(std::cout,
          "Ablation A: under-approximation on/off (thread-escape, 30s "
          "budget per configuration)");
  return 0;
}
