//===- bench_table4_reuse.cpp - Reproduces Table 4 ---------------------------===//
//
// Table 4 of the paper reports how often different proven queries share
// the same cheapest abstraction: the number of groups and the min / max /
// average group size. Shape expectations: average group sizes around ten
// or less - cheapest abstractions are mostly query-specific - with a few
// larger groups.
//
//===----------------------------------------------------------------------===//

#include "reporting/Aggregates.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;

static void addCells(std::vector<std::string> &Row,
                     const reporting::ReuseStats &S) {
  Row.push_back(TablePrinter::cell((long long)S.NumGroups));
  if (S.GroupSize.empty()) {
    Row.insert(Row.end(), {"-", "-", "-"});
    return;
  }
  Row.push_back(TablePrinter::cell((long long)S.GroupSize.min()));
  Row.push_back(TablePrinter::cell((long long)S.GroupSize.max()));
  Row.push_back(TablePrinter::cell(S.GroupSize.avg(), 1));
}

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "ts #groups", "min", "max", "avg",
               "esc #groups", "min", "max", "avg"});
  for (const auto &Config : synth::paperSuite()) {
    reporting::BenchRun Run = reporting::runBenchmark(Config);
    std::vector<std::string> Row{Config.Name};
    addCells(Row, reporting::reuseStats(Run.Ts));
    addCells(Row, reporting::reuseStats(Run.Esc));
    T.addRow(std::move(Row));
  }
  T.print(std::cout, "Table 4: cheapest-abstraction reuse across proven "
                     "queries (k = 5)");
  return 0;
}
