//===- bench_table2_scalability.cpp - Reproduces Table 2 ---------------------===//
//
// Table 2 of the paper reports, per benchmark and client, the minimum /
// maximum / average number of CEGAR iterations separately for proven and
// impossible queries, plus the per-query running time of the thread-escape
// analysis (the harder client to scale). Shape expectations from the
// paper: most queries resolve in under ten iterations on average;
// impossible queries resolve in very few iterations; the large benchmarks
// (avrora in particular) need the most iterations for proven type-state
// queries because their cheapest abstractions are the largest.
//
//===----------------------------------------------------------------------===//

#include "reporting/Aggregates.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <iostream>

using namespace optabs;
using reporting::ClientResults;
using tracer::Verdict;

static std::string iterCells(const MinMaxAvg &S) {
  if (S.empty())
    return "-/-/-";
  return TablePrinter::cell((long long)S.min()) + "/" +
         TablePrinter::cell((long long)S.max()) + "/" +
         TablePrinter::cell(S.avg(), 1);
}

static std::string timeCells(const MinMaxAvg &S) {
  if (S.empty())
    return "-/-/-";
  return formatDuration(S.min()) + "/" + formatDuration(S.max()) + "/" +
         formatDuration(S.avg());
}

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "ts proven it.", "ts imposs. it.",
               "esc proven it.", "esc imposs. it.", "esc proven time",
               "esc imposs. time"});
  for (const auto &Config : synth::paperSuite()) {
    reporting::BenchRun Run = reporting::runBenchmark(Config);
    T.addRow({Config.Name,
              iterCells(reporting::iterationStats(Run.Ts, Verdict::Proven)),
              iterCells(
                  reporting::iterationStats(Run.Ts, Verdict::Impossible)),
              iterCells(reporting::iterationStats(Run.Esc, Verdict::Proven)),
              iterCells(
                  reporting::iterationStats(Run.Esc, Verdict::Impossible)),
              timeCells(reporting::timeStats(Run.Esc, Verdict::Proven)),
              timeCells(reporting::timeStats(Run.Esc, Verdict::Impossible))});
  }
  T.print(std::cout, "Table 2: scalability (iterations min/max/avg and "
                     "thread-escape per-query time min/max/avg; k = 5)");
  return 0;
}
