//===- bench_micro.cpp - Micro-benchmarks of the core operations --------------===//
//
// google-benchmark suite for the building blocks whose costs drive the
// end-to-end numbers: DNF manipulation (product, simplify, semantic
// normalization), the min-cost SAT solver, the points-to substrate, the
// parametric forward analysis, trace extraction, and one full backward
// meta-analysis pass.
//
//===----------------------------------------------------------------------===//

#include "benchmark/benchmark.h"

#include "dataflow/Forward.h"
#include "escape/Escape.h"
#include "formula/Normalize.h"
#include "meta/Backward.h"
#include "pointer/PointsTo.h"
#include "reporting/Harness.h"
#include "support/Prng.h"
#include "tracer/MinCostSat.h"

using namespace optabs;
using formula::Cube;
using formula::Dnf;
using formula::Lit;

namespace {

Dnf randomDnf(Prng &Rng, unsigned NumCubes, unsigned NumAtoms,
              unsigned CubeLen) {
  std::vector<Cube> Cubes;
  while (Cubes.size() < NumCubes) {
    std::vector<Lit> Lits;
    for (unsigned I = 0; I < CubeLen; ++I) {
      auto A = static_cast<formula::AtomId>(Rng.nextBelow(NumAtoms));
      Lits.push_back(Rng.chance(1, 4) ? Lit::neg(A) : Lit::pos(A));
    }
    if (auto C = Cube::make(std::move(Lits)))
      Cubes.push_back(std::move(*C));
  }
  return Dnf::fromCubes(std::move(Cubes));
}

void BM_DnfProduct(benchmark::State &State) {
  Prng Rng(1);
  Dnf A = randomDnf(Rng, 16, 24, 3);
  Dnf B = randomDnf(Rng, 16, 24, 3);
  formula::AtomEval Eval = [](formula::AtomId) { return false; };
  for (auto _ : State) {
    Dnf P = Dnf::product(A, B, 0, Eval);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_DnfProduct);

void BM_DnfSimplify(benchmark::State &State) {
  Prng Rng(2);
  Dnf D = randomDnf(Rng, 64, 16, 4);
  for (auto _ : State) {
    Dnf Copy = D;
    Copy.sortBySize();
    Copy.simplify();
    benchmark::DoNotOptimize(Copy);
  }
}
BENCHMARK(BM_DnfSimplify);

void BM_SemanticNormalize(benchmark::State &State) {
  // Escape-shaped atoms: 8 three-valued locations.
  formula::LocationFn Loc = [](formula::AtomId A) {
    uint32_t Idx = A / 3;
    formula::LocationInfo Info;
    for (uint32_t V = 0; V < 3; ++V)
      Info.Values.push_back(Idx * 3 + V);
    return std::optional<formula::LocationInfo>(Info);
  };
  formula::CubeRefiner Refine = [&Loc](const Cube &C) {
    return formula::refineCubeByLocations(C, Loc);
  };
  Prng Rng(3);
  Dnf D = randomDnf(Rng, 32, 24, 4);
  for (auto _ : State) {
    Dnf Copy = D;
    formula::semanticNormalize(Copy, Refine, Loc);
    benchmark::DoNotOptimize(Copy);
  }
}
BENCHMARK(BM_SemanticNormalize);

void BM_MinCostSolve(benchmark::State &State) {
  Prng Rng(4);
  tracer::Cnf F;
  for (unsigned I = 0; I < 40; ++I) {
    std::vector<tracer::BoolLit> Clause;
    for (unsigned J = 0; J < 3; ++J)
      Clause.push_back({static_cast<uint32_t>(Rng.nextBelow(64)),
                        Rng.chance(3, 4)});
    F.addClause(std::move(Clause));
  }
  for (auto _ : State) {
    auto Model = tracer::solveMinCost(F, 64);
    benchmark::DoNotOptimize(Model);
  }
}
BENCHMARK(BM_MinCostSolve);

void BM_GenerateBenchmark(benchmark::State &State) {
  const auto &Config = synth::paperSuite()[0];
  for (auto _ : State) {
    synth::Benchmark B = synth::generate(Config);
    benchmark::DoNotOptimize(B.P.numCommands());
  }
}
BENCHMARK(BM_GenerateBenchmark);

void BM_PointsTo(benchmark::State &State) {
  synth::Benchmark B = synth::generate(synth::paperSuite()[2]); // hedc
  for (auto _ : State) {
    auto R = pointer::runPointsTo(B.P);
    benchmark::DoNotOptimize(R.reachableCommands().size());
  }
}
BENCHMARK(BM_PointsTo);

void BM_ForwardEscape(benchmark::State &State) {
  synth::Benchmark B = synth::generate(synth::paperSuite()[0]); // tsp
  escape::EscapeAnalysis A(B.P);
  std::vector<bool> Bits(B.P.numAllocs(), false);
  escape::EscParam Prm = A.paramFromBits(Bits); // cheapest abstraction
  for (auto _ : State) {
    dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(B.P, A, Prm);
    FA.run(A.initialState());
    benchmark::DoNotOptimize(FA.stats().NumStates);
  }
}
BENCHMARK(BM_ForwardEscape);

void BM_TraceExtractAndBackward(benchmark::State &State) {
  synth::Benchmark B = synth::generate(synth::paperSuite()[0]);
  escape::EscapeAnalysis A(B.P);
  escape::EscParam Prm =
      A.paramFromBits(std::vector<bool>(B.P.numAllocs(), false));
  dataflow::ForwardAnalysis<escape::EscapeAnalysis> FA(B.P, A, Prm);
  FA.run(A.initialState());
  // Find one failing query to exercise extraction + meta-analysis.
  ir::CheckId Check;
  std::optional<escape::EscState> Bad;
  for (ir::CheckId C : B.EscChecks) {
    formula::Dnf NotQ = A.notQ(C);
    for (const auto &D : FA.statesAtCheck(C)) {
      if (NotQ.eval(
              [&](formula::AtomId At) { return A.evalAtom(At, Prm, D); })) {
        Check = C;
        Bad = D;
        break;
      }
    }
    if (Bad)
      break;
  }
  if (!Bad) {
    State.SkipWithError("no failing query found");
    return;
  }
  meta::BackwardMetaAnalysis<escape::EscapeAnalysis> Bwd(B.P, A);
  for (auto _ : State) {
    auto T = FA.extractTrace(Check, *Bad);
    auto States = FA.replay(*T, A.initialState());
    auto F = Bwd.run(*T, Prm, States, A.notQ(Check));
    benchmark::DoNotOptimize(F->size());
  }
}
BENCHMARK(BM_TraceExtractAndBackward);

} // namespace

BENCHMARK_MAIN();
