//===- bench_governor_overhead.cpp - Cost of the resource governor ------------===//
//
// The governor's charge points sit on the hottest loops of every kernel
// (forward state visits, backward wp steps, DNF products, solver
// decisions), so their disarmed and armed costs both matter. This bench
// runs the full harness over the first paper-suite benchmarks three ways:
//
//   baseline   no gates anywhere (all budgets zero, faults disarmed)
//   gated      enormous budgets on every kernel (every charge point runs,
//              none ever exhausts)
//   memory     a 1-byte memory budget (the degradation ladder fires every
//              round - the worst-case governed configuration)
//
// and reports wall clock plus the relative overhead. Verdicts must match
// between baseline and gated (generous budgets are behavior-neutral); the
// bench asserts that.
//
// Usage: bench_governor_overhead
//
//===----------------------------------------------------------------------===//

#include "reporting/Harness.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "synth/Generator.h"

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

using namespace optabs;
using reporting::BenchRun;
using reporting::HarnessOptions;

namespace {

struct Row {
  double Seconds = 0;
  unsigned Proven = 0, Impossible = 0, Unresolved = 0;
  unsigned Exhausted = 0, Degradations = 0;
};

Row runConfig(const HarnessOptions &Options, size_t NumBenches) {
  Row R;
  Timer T;
  for (size_t I = 0; I < NumBenches; ++I) {
    BenchRun Run = reporting::runBenchmark(synth::paperSuite()[I], Options);
    for (const reporting::ClientResults *C : {&Run.Esc, &Run.Ts}) {
      R.Proven += C->count(tracer::Verdict::Proven);
      R.Impossible += C->count(tracer::Verdict::Impossible);
      R.Unresolved += C->count(tracer::Verdict::Unresolved);
      R.Exhausted += C->BudgetExhausted;
      R.Degradations += C->Degradations;
    }
  }
  R.Seconds = T.seconds();
  return R;
}

std::string fmt(double V, const char *Suffix = "") {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f%s", V, Suffix);
  return Buf;
}

} // namespace

int main() {
  const size_t NumBenches = 2; // first two paper-suite programs
  HarnessOptions Baseline;

  HarnessOptions Gated = Baseline;
  Gated.Cfg.Budgets.ForwardStepBudget = 1ull << 40;
  Gated.Cfg.Budgets.BackwardStepBudget = 1ull << 40;
  Gated.Cfg.Budgets.SolverDecisionBudget = 1ull << 40;

  HarnessOptions Memory = Gated;
  Memory.Cfg.Budgets.MemoryBudgetBytes = 1;

  // Interleave-free, coarse but honest: one full pass per configuration.
  Row B = runConfig(Baseline, NumBenches);
  Row G = runConfig(Gated, NumBenches);
  Row M = runConfig(Memory, NumBenches);

  if (B.Proven != G.Proven || B.Impossible != G.Impossible ||
      B.Unresolved != G.Unresolved || G.Exhausted != 0) {
    std::cerr << "FAIL: generous budgets changed verdicts (baseline "
              << B.Proven << "/" << B.Impossible << "/" << B.Unresolved
              << ", gated " << G.Proven << "/" << G.Impossible << "/"
              << G.Unresolved << ", exhausted " << G.Exhausted << ")\n";
    return 1;
  }

  TablePrinter Table;
  Table.setHeader({"config", "seconds", "overhead", "proven", "impossible",
                   "unresolved", "exhausted", "degradations"});
  auto AddRow = [&](const char *Name, const Row &R) {
    Table.addRow({Name, fmt(R.Seconds),
                  fmt(B.Seconds > 0 ? (R.Seconds / B.Seconds - 1) * 100 : 0,
                      "%"),
                  std::to_string(R.Proven), std::to_string(R.Impossible),
                  std::to_string(R.Unresolved), std::to_string(R.Exhausted),
                  std::to_string(R.Degradations)});
  };
  AddRow("baseline", B);
  AddRow("gated", G);
  AddRow("memory-ladder", M);
  Table.print(std::cout);
  return 0;
}
