//===- bench_suite_summary.cpp - Canonical machine-readable suite summary -----===//
//
// Runs the full paper suite through both clients at one worker thread and
// at the hardware worker count, and emits one canonical BENCH_suite.json:
// end-to-end wall clock, the driver's per-phase seconds, the forward-run
// cache hit rate, and the verdict mix per thread count. CI uploads the
// file as an artifact and the perf-smoke job diffs the phase columns
// against the checked-in baseline (bench/BENCH_baseline.json).
//
// Verdict counts must be identical across thread counts (the driver is
// deterministic); the bench exits nonzero if they diverge, so the summary
// doubles as a determinism check.
//
// Usage: bench_suite_summary [out.json]   (stdout when no argument)
//
//===----------------------------------------------------------------------===//

#include "reporting/Harness.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace optabs;

namespace {

struct SuiteRun {
  unsigned Threads = 0;
  double WallSeconds = 0;
  tracer::PhaseSeconds Phases;
  uint64_t CacheHits = 0, CacheMisses = 0;
  unsigned Proven = 0, Impossible = 0, Unresolved = 0;
};

SuiteRun runSuite(unsigned Threads) {
  SuiteRun R;
  R.Threads = Threads;
  reporting::HarnessOptions Options;
  Options.Cfg.Execution.NumThreads = Threads;
  Timer Wall;
  for (const synth::BenchConfig &Config : synth::paperSuite()) {
    reporting::BenchRun Run = reporting::runBenchmark(Config, Options);
    for (const reporting::ClientResults *C : {&Run.Ts, &Run.Esc}) {
      R.Phases += C->Phases;
      R.CacheHits += C->CacheHits;
      R.CacheMisses += C->CacheMisses;
      R.Proven += C->count(tracer::Verdict::Proven);
      R.Impossible += C->count(tracer::Verdict::Impossible);
      R.Unresolved += C->count(tracer::Verdict::Unresolved);
    }
  }
  R.WallSeconds = Wall.seconds();
  return R;
}

std::string num(double V) {
  std::ostringstream S;
  S.precision(6);
  S << std::fixed << V;
  return S.str();
}

void writeRun(std::ostream &OS, const SuiteRun &R, bool Last) {
  double Lookups = static_cast<double>(R.CacheHits + R.CacheMisses);
  OS << "    {\n"
     << "      \"threads\": " << R.Threads << ",\n"
     << "      \"wall_seconds\": " << num(R.WallSeconds) << ",\n"
     << "      \"phase_seconds\": {\n"
     << "        \"plan\": " << num(R.Phases.Plan) << ",\n"
     << "        \"forward\": " << num(R.Phases.Forward) << ",\n"
     << "        \"classify\": " << num(R.Phases.Classify) << ",\n"
     << "        \"extract\": " << num(R.Phases.Extract) << ",\n"
     << "        \"backward\": " << num(R.Phases.Backward) << ",\n"
     << "        \"merge\": " << num(R.Phases.Merge) << "\n"
     << "      },\n"
     << "      \"cache\": {\n"
     << "        \"hits\": " << R.CacheHits << ",\n"
     << "        \"misses\": " << R.CacheMisses << ",\n"
     << "        \"hit_rate\": "
     << num(Lookups > 0 ? R.CacheHits / Lookups : 0) << "\n"
     << "      },\n"
     << "      \"verdicts\": {\n"
     << "        \"proven\": " << R.Proven << ",\n"
     << "        \"impossible\": " << R.Impossible << ",\n"
     << "        \"unresolved\": " << R.Unresolved << "\n"
     << "      }\n"
     << "    }" << (Last ? "\n" : ",\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const unsigned MaxThreads = std::max(1u, support::ThreadPool::hardwareWorkers());
  std::vector<SuiteRun> Runs;
  Runs.push_back(runSuite(1));
  if (MaxThreads > 1)
    Runs.push_back(runSuite(MaxThreads));

  for (const SuiteRun &R : Runs)
    if (R.Proven != Runs[0].Proven || R.Impossible != Runs[0].Impossible ||
        R.Unresolved != Runs[0].Unresolved) {
      std::cerr << "verdict mix diverges at " << R.Threads
                << " threads - driver determinism broken\n";
      return 1;
    }

  std::ofstream File;
  if (Argc > 1) {
    File.open(Argv[1]);
    if (!File) {
      std::cerr << "cannot open " << Argv[1] << "\n";
      return 1;
    }
  }
  std::ostream &OS = Argc > 1 ? File : std::cout;

  OS << "{\n"
     << "  \"suite\": \"paperSuite\",\n"
     << "  \"benchmarks\": " << synth::paperSuite().size() << ",\n"
     << "  \"hardware_workers\": " << MaxThreads << ",\n"
     << "  \"runs\": [\n";
  for (size_t I = 0; I < Runs.size(); ++I)
    writeRun(OS, Runs[I], I + 1 == Runs.size());
  OS << "  ]\n}\n";
  return 0;
}
