//===- bench_table1_stats.cpp - Reproduces Table 1 ---------------------------===//
//
// Table 1 of the paper reports benchmark statistics: classes, methods,
// bytecode size, KLOC, and log2 of the abstraction-family size for each
// client (number of pointer variables for type-state, number of allocation
// sites for thread-escape). Our synthetic suite reports the analogous
// program statistics. No analyses run here; this is the workload census.
//
//===----------------------------------------------------------------------===//

#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "description", "procs", "commands", "checks",
               "log2(#abs) type-state", "log2(#abs) thread-esc."});
  for (const auto &Config : synth::paperSuite()) {
    synth::Benchmark B = synth::generate(Config);
    T.addRow({Config.Name, Config.Description,
              TablePrinter::cell((long long)B.P.numProcs()),
              TablePrinter::cell((long long)B.P.numCommands()),
              TablePrinter::cell((long long)B.P.numChecks()),
              TablePrinter::cell((long long)B.P.numVars()),
              TablePrinter::cell((long long)B.P.numAllocs())});
  }
  T.print(std::cout,
          "Table 1: benchmark statistics (synthetic suite mirroring the "
          "paper's seven Java benchmarks)");
  std::cout << "\nThe abstraction family searched per query is 2^N with N "
               "as reported in the last two columns.\n";
  return 0;
}
