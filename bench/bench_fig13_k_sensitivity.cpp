//===- bench_fig13_k_sensitivity.cpp - Reproduces Figure 13 -------------------===//
//
// Figure 13 of the paper shows the effect of the beam width k in {1,5,10}
// on the running time of the thread-escape analysis over the four smallest
// benchmarks (the larger ones exhaust memory at k = 1 and k = 10). Shape
// expectations: k = 1 does cheap backward passes but needs many more
// CEGAR iterations; k = 10 needs few iterations but each backward pass
// tracks large formulas; k = 5 is the sweet spot with the fewest
// unresolved queries and the best overall time.
//
//===----------------------------------------------------------------------===//

#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;
using tracer::Verdict;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "k", "time", "fwd runs", "proven", "impossible",
               "unresolved"});
  std::vector<std::pair<std::string, double>> Chart;
  for (const auto &Config : synth::smallSuite()) {
    for (unsigned K : {1u, 5u, 10u}) {
      reporting::HarnessOptions Options;
      Options.RunTypestate = false;
      Options.Cfg.Execution.K = K;
      reporting::BenchRun Run = reporting::runBenchmark(Config, Options);
      T.addRow({Config.Name, TablePrinter::cell((long long)K),
                TablePrinter::cell(Run.Esc.TotalSeconds, 2) + "s",
                TablePrinter::cell((long long)Run.Esc.ForwardRuns),
                TablePrinter::cell((long long)Run.Esc.count(Verdict::Proven)),
                TablePrinter::cell(
                    (long long)Run.Esc.count(Verdict::Impossible)),
                TablePrinter::cell(
                    (long long)Run.Esc.count(Verdict::Unresolved))});
      Chart.push_back({Config.Name + " k=" + std::to_string(K),
                       Run.Esc.TotalSeconds});
    }
    T.addRule();
  }
  T.print(std::cout, "Figure 13: effect of k on the thread-escape analysis "
                     "(four smallest benchmarks)");
  std::cout << '\n';
  printBarChart(std::cout, "Running time (seconds):", Chart);
  return 0;
}
