//===- bench_parallel_scaling.cpp - Driver speedup vs worker count ------------===//
//
// Measures how the parallel TRACER driver scales on the Table-2
// scalability workload: the full paper suite, both clients, at 1/2/4/8
// worker threads. Reports wall-clock per thread count, speedup over the
// sequential driver, and the forward-run cache hit rate (hits over
// lookups). Because the driver merges deterministically, every row
// resolves the same queries to the same verdicts - only the wall clock
// changes; the bench asserts that.
//
// Usage: bench_parallel_scaling [out.csv]
// With an argument, additionally writes one aggregate summary row per
// (benchmark, client, thread count) through the shared CSV path.
//
//===----------------------------------------------------------------------===//

#include "reporting/Csv.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace optabs;
using reporting::BenchRun;
using reporting::ClientResults;

namespace {

struct Row {
  unsigned Threads = 0;
  double Seconds = 0;
  unsigned Proven = 0, Impossible = 0, Unresolved = 0;
  uint64_t Hits = 0, Misses = 0;
  tracer::PhaseSeconds Phases;
};

void accumulate(Row &R, const ClientResults &C) {
  R.Seconds += C.TotalSeconds;
  R.Proven += C.count(tracer::Verdict::Proven);
  R.Impossible += C.count(tracer::Verdict::Impossible);
  R.Unresolved += C.count(tracer::Verdict::Unresolved);
  R.Hits += C.CacheHits;
  R.Misses += C.CacheMisses;
  R.Phases += C.Phases;
}

} // namespace

int main(int Argc, char **Argv) {
  std::ofstream Csv;
  if (Argc > 1) {
    Csv.open(Argv[1]);
    if (!Csv) {
      std::cerr << "cannot open " << Argv[1] << "\n";
      return 1;
    }
    reporting::writeCsvSummaryHeader(Csv);
  }

  // On a single-hardware-thread container the pool worker counts are pure
  // oversubscription: "speedup" would measure scheduler noise, not
  // scaling. Annotate the CSV rows so downstream plots can filter, and
  // skip the speedup sanity check below.
  const unsigned HW = support::ThreadPool::hardwareWorkers();

  const std::vector<synth::BenchConfig> &Suite = synth::paperSuite();
  std::vector<Row> Rows;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    reporting::HarnessOptions Options;
    Options.Cfg.Execution.NumThreads = Threads;
    Row R;
    R.Threads = Threads;
    for (const synth::BenchConfig &Config : Suite) {
      BenchRun Run = reporting::runBenchmark(Config, Options);
      accumulate(R, Run.Ts);
      accumulate(R, Run.Esc);
      if (Csv.is_open()) {
        std::string Label = "threads=" + std::to_string(Threads) +
                            " hw=" + std::to_string(HW);
        reporting::writeCsvSummaryRow(Csv, Config.Name, "typestate", Label,
                                      Run.Ts);
        reporting::writeCsvSummaryRow(Csv, Config.Name, "thread-escape",
                                      Label, Run.Esc);
      }
    }
    Rows.push_back(R);
  }

  // Determinism cross-check: verdict mixes must be identical at every
  // worker count.
  bool Deterministic = true;
  for (const Row &R : Rows)
    Deterministic = Deterministic && R.Proven == Rows[0].Proven &&
                    R.Impossible == Rows[0].Impossible &&
                    R.Unresolved == Rows[0].Unresolved &&
                    R.Hits == Rows[0].Hits && R.Misses == Rows[0].Misses;

  TablePrinter T;
  T.setHeader({"threads", "wall", "speedup", "proven", "imposs.", "unres.",
               "cache hit rate"});
  for (const Row &R : Rows) {
    double Speedup = R.Seconds > 0 ? Rows[0].Seconds / R.Seconds : 0;
    double Lookups = static_cast<double>(R.Hits + R.Misses);
    T.addRow({TablePrinter::cell((long long)R.Threads),
              formatDuration(R.Seconds),
              TablePrinter::cell(Speedup, 2) + "x",
              TablePrinter::cell((long long)R.Proven),
              TablePrinter::cell((long long)R.Impossible),
              TablePrinter::cell((long long)R.Unresolved),
              Lookups > 0 ? TablePrinter::percent(R.Hits / Lookups, 1)
                          : "-"});
  }
  T.print(std::cout,
          "Parallel scaling: full suite, both clients, per worker count");

  // Where the wall clock goes: the driver's per-stage timers, summed over
  // both clients. The parallel stages (forward, classify, backward) should
  // shrink with real hardware threads; plan and merge are sequential.
  TablePrinter Phases;
  Phases.setHeader({"threads", "plan", "forward", "classify", "extract",
                    "backward", "merge"});
  for (const Row &R : Rows)
    Phases.addRow({TablePrinter::cell((long long)R.Threads),
                   formatDuration(R.Phases.Plan),
                   formatDuration(R.Phases.Forward),
                   formatDuration(R.Phases.Classify),
                   formatDuration(R.Phases.Extract),
                   formatDuration(R.Phases.Backward),
                   formatDuration(R.Phases.Merge)});
  Phases.print(std::cout, "Per-phase wall clock (tracer strategy rounds)");

  std::cout << "hardware threads: " << HW
            << " (speedup is bounded by this)\n";
  std::cout << (Deterministic
                    ? "verdicts and cache counters identical at every "
                      "worker count\n"
                    : "DETERMINISM VIOLATION: results differ across worker "
                      "counts\n");

  // Speedup sanity: with real hardware parallelism, the parallel driver
  // must not be catastrophically slower than sequential. Skipped on one
  // hardware thread, where every multi-worker row is oversubscribed and
  // the ratio is meaningless.
  bool SpeedupOk = true;
  if (HW > 1) {
    double Best = 0;
    for (const Row &R : Rows)
      if (R.Seconds > 0)
        Best = std::max(Best, Rows[0].Seconds / R.Seconds);
    SpeedupOk = Best >= 0.5;
    if (!SpeedupOk)
      std::cout << "SPEEDUP REGRESSION: best parallel speedup " << Best
                << "x is below the 0.5x sanity floor\n";
  } else {
    std::cout << "single hardware thread: speedup column reflects "
              << "oversubscription noise; sanity check skipped\n";
  }
  return (Deterministic && SpeedupOk) ? 0 : 1;
}
