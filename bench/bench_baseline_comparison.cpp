//===- bench_baseline_comparison.cpp - TRACER vs. Related-Work baselines ------===//
//
// The paper's Related Work positions TRACER against (a) CEGAR that learns
// nothing beyond the current abstraction's failure and (b) refinement
// analyses that monotonically grow the abstraction wherever blame falls
// ("a drawback ... is that they can refine much more than necessary") and
// that can never declare impossibility. This bench runs all three
// strategies on the thread-escape client. Shape expectations: the
// eliminate-current baseline exhausts its iteration budget on almost
// everything (the family is 2^N); greedy-grow proves quickly but reports
// no impossibilities and finds more expensive abstractions; TRACER
// resolves everything cheaply and minimally.
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "reporting/Harness.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;
using tracer::SearchStrategy;
using tracer::Verdict;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "strategy", "proven", "impossible", "unresolved",
               "avg iters", "avg |p| (proven)", "time"});
  const auto &Suite = synth::paperSuite();
  for (size_t I = 0; I < 4; ++I) {
    synth::Benchmark B = synth::generate(Suite[I]);
    escape::EscapeAnalysis A(B.P);
    for (SearchStrategy S :
         {SearchStrategy::Tracer, SearchStrategy::GreedyGrow,
          SearchStrategy::EliminateCurrent}) {
      tracer::TracerOptions Options;
      Options.Strategy = S;
      Options.MaxItersPerQuery = 24;
      Options.TimeBudgetSeconds = 60;
      tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
      auto Outcomes = Driver.run(B.EscChecks);
      unsigned Proven = 0, Impossible = 0, Unresolved = 0;
      MinMaxAvg Iters, Cost;
      for (const auto &O : Outcomes) {
        Iters.add(O.Iterations);
        switch (O.V) {
        case Verdict::Proven:
          ++Proven;
          Cost.add(O.CheapestCost);
          break;
        case Verdict::Impossible:
          ++Impossible;
          break;
        case Verdict::Unresolved:
          ++Unresolved;
          break;
        }
      }
      T.addRow({Suite[I].Name, tracer::strategyName(S),
                TablePrinter::cell((long long)Proven),
                TablePrinter::cell((long long)Impossible),
                TablePrinter::cell((long long)Unresolved),
                TablePrinter::cell(Iters.avg(), 1),
                Cost.empty() ? "-" : TablePrinter::cell(Cost.avg(), 2),
                TablePrinter::cell(Driver.totalSeconds(), 2) + "s"});
    }
    T.addRule();
  }
  T.print(std::cout,
          "Baseline comparison: TRACER vs eliminate-current CEGAR vs "
          "greedy monotone refinement (thread-escape)");
  std::cout << "\nNote: greedy-grow's |p| is the abstraction it happens to "
               "find, not a minimum; it\ncannot distinguish impossible "
               "queries from hard ones.\n";
  return 0;
}
