//===- bench_fig14_size_distribution.cpp - Reproduces Figure 14 ---------------===//
//
// Figure 14 of the paper shows, for the three largest benchmarks, the
// distribution of cheapest-abstraction sizes of proven thread-escape
// queries. Shape expectations: heavily concentrated on 1-2 L-sites, with
// a long sparse tail of queries that genuinely need many sites.
//
//===----------------------------------------------------------------------===//

#include "reporting/Aggregates.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;

int main() {
  const auto &Suite = synth::paperSuite();
  // The paper's largest three: antlr, avrora, lusearch.
  for (size_t I = 4; I < Suite.size(); ++I) {
    reporting::HarnessOptions Options;
    Options.RunTypestate = false;
    reporting::BenchRun Run = reporting::runBenchmark(Suite[I], Options);
    Histogram H = reporting::cheapestSizeHistogram(Run.Esc);
    std::vector<std::pair<std::string, double>> Entries;
    for (const auto &[Size, Count] : H.buckets())
      Entries.push_back({"|p| = " + std::to_string(Size),
                         static_cast<double>(Count)});
    std::cout << "Figure 14 (" << Suite[I].Name
              << "): distribution of cheapest-abstraction sizes over "
              << H.total() << " proven thread-escape queries\n";
    printBarChart(std::cout, "", Entries);
    std::cout << '\n';
  }
  return 0;
}
