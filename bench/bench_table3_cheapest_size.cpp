//===- bench_table3_cheapest_size.cpp - Reproduces Table 3 -------------------===//
//
// Table 3 of the paper reports the minimum / maximum / average size of the
// cheapest abstraction found for proven queries. Shape expectations: for
// type-state the average grows with benchmark size (deep must-alias chains
// need many tracked variables; avrora is the extreme), while thread-escape
// mostly needs only 1-2 L-sites on average with rare large outliers.
//
//===----------------------------------------------------------------------===//

#include "reporting/Aggregates.h"
#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;

static std::string cells(const MinMaxAvg &S) {
  if (S.empty())
    return "-/-/-";
  return TablePrinter::cell((long long)S.min()) + "/" +
         TablePrinter::cell((long long)S.max()) + "/" +
         TablePrinter::cell(S.avg(), 1);
}

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "type-state min/max/avg",
               "thread-escape min/max/avg"});
  for (const auto &Config : synth::paperSuite()) {
    reporting::BenchRun Run = reporting::runBenchmark(Config);
    T.addRow({Config.Name, cells(reporting::cheapestSizeStats(Run.Ts)),
              cells(reporting::cheapestSizeStats(Run.Esc))});
  }
  T.print(std::cout, "Table 3: cheapest abstraction size for proven "
                     "queries (k = 5)");
  return 0;
}
