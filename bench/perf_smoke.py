#!/usr/bin/env python3
"""Perf-smoke comparator for the canonical suite summary.

Diffs the per-phase seconds of a fresh BENCH_suite.json against the
checked-in baseline (bench/BENCH_baseline.json) at matching thread
counts and fails when any phase regressed by more than the threshold
(default 25%). Sub-10ms phases are skipped - at that scale the numbers
are scheduler noise, not kernel behavior.

CI hardware differs from the machine that produced the baseline, so the
gate can be demoted to a warning with OPTABS_PERF_ADVISORY=1 (the CI job
sets it; flip it off to make the job binding on dedicated hardware).

Usage: perf_smoke.py NEW_JSON [BASELINE_JSON] [--threshold PCT]
Exit status: 0 ok / advisory, 1 regression (binding mode), 2 bad input.
"""

import json
import os
import sys

MIN_PHASE_SECONDS = 0.010


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-smoke: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    threshold = 25.0
    for a in argv[1:]:
        if a.startswith("--threshold"):
            threshold = float(a.split("=", 1)[1])
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    new_path = args[0]
    base_path = args[1] if len(args) > 1 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_baseline.json")

    new, base = load(new_path), load(base_path)
    base_runs = {r["threads"]: r for r in base.get("runs", [])}
    regressions = []
    rows = []
    for run in new.get("runs", []):
        ref = base_runs.get(run["threads"])
        if ref is None:
            continue
        for phase, secs in run["phase_seconds"].items():
            ref_secs = ref["phase_seconds"].get(phase)
            if ref_secs is None or ref_secs < MIN_PHASE_SECONDS:
                continue
            delta = 100.0 * (secs - ref_secs) / ref_secs
            rows.append((run["threads"], phase, ref_secs, secs, delta))
            if delta > threshold:
                regressions.append((run["threads"], phase, delta))

    if not rows:
        print("perf-smoke: no comparable phases (thread counts disjoint?)",
              file=sys.stderr)
        return 2

    # The before/after table prints on every outcome - a green run should
    # still record where the time went.
    print(f"{'threads':>7}  {'phase':>9}  {'baseline':>9}  "
          f"{'new':>9}  {'delta':>7}")
    for threads, phase, ref_secs, secs, delta in rows:
        marker = "  <-- REGRESSION" if delta > threshold else ""
        print(f"{threads:>7}  {phase:>9}  {ref_secs:8.3f}s  "
              f"{secs:8.3f}s  {delta:+6.1f}%{marker}")

    if not regressions:
        print(f"perf-smoke: ok, no phase regressed beyond {threshold:.0f}%")
        return 0
    for threads, phase, delta in regressions:
        print(f"perf-smoke: {phase} at {threads} threads regressed "
              f"{delta:+.1f}% (limit {threshold:.0f}%)", file=sys.stderr)
    if os.environ.get("OPTABS_PERF_ADVISORY"):
        print("perf-smoke: OPTABS_PERF_ADVISORY set - reporting only",
              file=sys.stderr)
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
