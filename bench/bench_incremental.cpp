//===- bench_incremental.cpp - Warm re-registration speedup ------------------===//
//
// The incremental re-analysis acceptance gate: on a K-procedure program
// (one escape check per procedure), a one-procedure edit followed by
// re-registration and a full re-query must be at least 5x faster through
// the incremental path (diff, migrate, replay, re-run only the dirty
// check) than through the historical full-invalidate path (every check
// recomputed cold) - with bitwise-identical verdicts.
//
// Emits BENCH_incremental.json (schema below; bench/BENCH_incremental_
// baseline.json holds a reference run) and exits 1 when the speedup gate
// or the verdict-identity check fails. OPTABS_PERF_ADVISORY=1 demotes the
// speedup gate to a warning, matching bench/perf_smoke.py; the identity
// check is never advisory.
//
// Usage: bench_incremental [OUTPUT_JSON]
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"
#include "support/Timer.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace optabs;

namespace {

constexpr unsigned NumProcs = 20;

/// main calls p01..p20; each procedure allocates two objects, links them
/// through a field (the figure-6 shape, so every check needs a
/// non-trivial abstraction), and checks the reachable one.
std::string makeProgram(bool EditLastProc) {
  std::string Text = "proc main {\n";
  for (unsigned I = 1; I <= NumProcs; ++I)
    Text += "  call p" + std::to_string(I) + ";\n";
  Text += "}\n";
  for (unsigned I = 1; I <= NumProcs; ++I) {
    std::string N = std::to_string(I);
    Text += "proc p" + N + " {\n";
    Text += "  u" + N + " = new ha" + N + ";\n";
    Text += "  v" + N + " = new hb" + N + ";\n";
    Text += "  v" + N + ".f = u" + N + ";\n";
    if (EditLastProc && I == NumProcs)
      Text += "  v" + N + ".f = u" + N + ";\n"; // the one-proc edit
    Text += "  check(u" + N + ");\n";
    Text += "}\n";
  }
  return Text;
}

struct Pass {
  std::vector<service::QueryResult> Results;
  double ReQuerySeconds = 0;
  uint64_t WarmForwardRuns = 0; ///< forward fixpoints after re-register
  service::ServiceStats Stats;
};

/// Cold-registers version 1, queries every check, re-registers the edited
/// version, and re-queries every check (the timed region).
Pass runPass(bool Incremental) {
  service::AnalysisService::Options Opts;
  Opts.AutoDispatch = false;
  Opts.Base.Service.IncrementalReRegister = Incremental;
  service::AnalysisService Svc(std::move(Opts));
  if (!Svc.registerProgram("p", makeProgram(false)).Ok)
    std::abort();

  service::SessionSpec Spec;
  Spec.Program = "p";
  Spec.Client = "escape";
  std::string Err;
  service::Session S = Svc.openSession(Spec, Err);
  if (!S.valid())
    std::abort();

  auto QueryAll = [&] {
    std::vector<std::future<service::QueryResult>> Futures;
    for (uint32_t C = 0; C < NumProcs; ++C)
      Futures.push_back(S.submit({C, 0, 0}));
    Svc.drain();
    std::vector<service::QueryResult> Out;
    for (auto &F : Futures)
      Out.push_back(F.get());
    return Out;
  };
  QueryAll(); // warm the caches against version 1 (untimed)

  uint64_t RunsBefore = Svc.stats().ForwardRuns;
  Pass P;
  Timer T;
  if (!Svc.registerProgram("p", makeProgram(true)).Ok)
    std::abort();
  P.Results = QueryAll();
  P.ReQuerySeconds = T.seconds();
  P.Stats = Svc.stats();
  P.WarmForwardRuns = P.Stats.ForwardRuns - RunsBefore;
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_incremental.json";

  Pass Full = runPass(/*Incremental=*/false);
  Pass Warm = runPass(/*Incremental=*/true);

  bool Identical = Full.Results.size() == Warm.Results.size();
  for (size_t I = 0; Identical && I < Full.Results.size(); ++I) {
    const service::QueryResult &A = Full.Results[I];
    const service::QueryResult &B = Warm.Results[I];
    Identical = A.Status == B.Status && A.V == B.V &&
                A.Iterations == B.Iterations &&
                A.CheapestCost == B.CheapestCost &&
                A.CheapestParam == B.CheapestParam;
    if (!Identical)
      std::cerr << "FAIL: verdict " << I
                << " diverged between incremental and full re-registration\n";
  }

  double Speedup = Warm.ReQuerySeconds > 0
                       ? Full.ReQuerySeconds / Warm.ReQuerySeconds
                       : 0;
  std::ofstream Out(OutPath);
  Out << "{\n"
      << "  \"benchmark\": \"incremental_reregister\",\n"
      << "  \"procs\": " << NumProcs << ",\n"
      << "  \"checks\": " << NumProcs << ",\n"
      << "  \"full_requery_seconds\": " << Full.ReQuerySeconds << ",\n"
      << "  \"warm_requery_seconds\": " << Warm.ReQuerySeconds << ",\n"
      << "  \"speedup\": " << Speedup << ",\n"
      << "  \"full_forward_runs\": " << Full.WarmForwardRuns << ",\n"
      << "  \"warm_forward_runs\": " << Warm.WarmForwardRuns << ",\n"
      << "  \"entries_migrated\": " << Warm.Stats.EntriesMigrated << ",\n"
      << "  \"verdicts_replayed\": " << Warm.Stats.VerdictsReplayed << ",\n"
      << "  \"procs_dirty\": " << Warm.Stats.ProceduresDirty << "\n"
      << "}\n";

  std::cout << "incremental re-register: full " << Full.ReQuerySeconds
            << "s (" << Full.WarmForwardRuns << " forward runs), warm "
            << Warm.ReQuerySeconds << "s (" << Warm.WarmForwardRuns
            << " forward runs), speedup " << Speedup << "x, "
            << Warm.Stats.VerdictsReplayed << " verdicts replayed\n";

  if (!Identical)
    return 1;
  // The dirty set is one procedure, so the warm pass must re-run only a
  // small fraction of the fixpoints the full pass recomputes.
  if (Warm.WarmForwardRuns * 2 >= Full.WarmForwardRuns) {
    std::cerr << "FAIL: warm pass recomputed " << Warm.WarmForwardRuns
              << " of " << Full.WarmForwardRuns
              << " forward runs - invalidation is not proportional to the "
                 "edit\n";
    return 1;
  }
  if (Speedup < 5.0) {
    std::cerr << "FAIL: warm re-register speedup " << Speedup
              << "x is below the 5x gate\n";
    if (!std::getenv("OPTABS_PERF_ADVISORY"))
      return 1;
    std::cerr << "OPTABS_PERF_ADVISORY set - reporting only\n";
  }
  return 0;
}
