//===- bench_fig12_precision.cpp - Reproduces Figure 12 ----------------------===//
//
// Figure 12 of the paper classifies every query as proven (with a cheapest
// abstraction), impossible (no abstraction proves it), or unresolved
// within the budget. Shape expectations: all type-state queries resolve,
// with impossible notably outnumbering proven (the stress property
// penalizes any must-alias imprecision); thread-escape proves ~38% and
// refutes ~47% with the remainder unresolved, concentrated on the larger
// benchmarks; overall resolution rate is >90% per client.
//
//===----------------------------------------------------------------------===//

#include "reporting/Harness.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;
using reporting::ClientResults;
using tracer::Verdict;

static void addRow(TablePrinter &T, const std::string &Name,
                   const ClientResults &R) {
  unsigned Proven = R.count(Verdict::Proven);
  unsigned Impossible = R.count(Verdict::Impossible);
  unsigned Unresolved = R.count(Verdict::Unresolved);
  double Total = std::max<size_t>(R.Queries.size(), 1);
  T.addRow({Name, TablePrinter::cell((long long)R.Queries.size()),
            TablePrinter::cell((long long)Proven),
            TablePrinter::percent(Proven / Total, 0),
            TablePrinter::cell((long long)Impossible),
            TablePrinter::percent(Impossible / Total, 0),
            TablePrinter::cell((long long)Unresolved),
            TablePrinter::percent(Unresolved / Total, 0)});
}

int main() {
  TablePrinter Ts, Esc;
  for (TablePrinter *T : {&Ts, &Esc})
    T->setHeader({"benchmark", "#queries", "proven", "%", "impossible", "%",
                  "unresolved", "%"});

  unsigned long long ResolvedTs = 0, TotalTs = 0, ResolvedEsc = 0,
                     TotalEsc = 0;
  for (const auto &Config : synth::paperSuite()) {
    reporting::BenchRun Run = reporting::runBenchmark(Config);
    addRow(Ts, Config.Name, Run.Ts);
    addRow(Esc, Config.Name, Run.Esc);
    TotalTs += Run.Ts.Queries.size();
    ResolvedTs += Run.Ts.count(Verdict::Proven) +
                  Run.Ts.count(Verdict::Impossible);
    TotalEsc += Run.Esc.Queries.size();
    ResolvedEsc += Run.Esc.count(Verdict::Proven) +
                   Run.Esc.count(Verdict::Impossible);
  }
  Ts.print(std::cout, "Figure 12 (type-state): query precision per "
                      "benchmark (k = 5)");
  std::cout << '\n';
  Esc.print(std::cout, "Figure 12 (thread-escape): query precision per "
                       "benchmark (k = 5)");
  std::cout << "\nResolution rate: type-state "
            << TablePrinter::percent(double(ResolvedTs) /
                                     std::max(1ull, TotalTs))
            << ", thread-escape "
            << TablePrinter::percent(double(ResolvedEsc) /
                                     std::max(1ull, TotalEsc))
            << " (paper: 100% and 85%, 92.5% average)\n";
  return 0;
}
