//===- bench_export_csv.cpp - Machine-readable dump of all outcomes -----------===//
//
// Runs the full suite through both clients and dumps one CSV row per
// query to stdout, so the evaluation figures can be re-plotted with
// external tooling. The human-readable tables come from the other bench
// binaries; this is the raw data.
//
//===----------------------------------------------------------------------===//

#include "reporting/Csv.h"

#include <iostream>

using namespace optabs;

int main() {
  reporting::writeCsvHeader(std::cout);
  for (const auto &Config : synth::paperSuite())
    reporting::writeCsvRows(std::cout, reporting::runBenchmark(Config));
  return 0;
}
