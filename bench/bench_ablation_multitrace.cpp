//===- bench_ablation_multitrace.cpp - §8's DAG-counterexample direction ------===//
//
// §8 of the paper proposes generalizing the meta-analysis from single
// abstract counterexample traces to DAG counterexamples. This ablation
// evaluates a trace-level approximation of that idea: analyze the traces
// of several distinct failing states per CEGAR iteration and conjoin all
// the learned unviability conditions. Shape expectation: more traces per
// iteration reduce the number of forward runs (the dominant cost) at the
// price of extra backward passes; the benefit concentrates on queries
// whose failures have several independent causes (confusers).
//
//===----------------------------------------------------------------------===//

#include "escape/Escape.h"
#include "reporting/Harness.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace optabs;
using tracer::Verdict;

int main() {
  TablePrinter T;
  T.setHeader({"benchmark", "traces/iter", "fwd runs", "bwd runs",
               "avg iters (proven)", "unresolved", "time"});
  const auto &Suite = synth::paperSuite();
  for (size_t I = 2; I < 6; ++I) { // hedc .. avrora
    synth::Benchmark B = synth::generate(Suite[I]);
    escape::EscapeAnalysis A(B.P);
    for (unsigned M : {1u, 2u, 4u}) {
      tracer::TracerOptions Options;
      Options.MaxItersPerQuery = 24;
      Options.TracesPerIteration = M;
      tracer::QueryDriver<escape::EscapeAnalysis> Driver(B.P, A, Options);
      auto Outcomes = Driver.run(B.EscChecks);
      MinMaxAvg ProvenIters;
      unsigned Unresolved = 0;
      for (const auto &O : Outcomes) {
        if (O.V == Verdict::Proven)
          ProvenIters.add(O.Iterations);
        Unresolved += O.V == Verdict::Unresolved;
      }
      T.addRow({Suite[I].Name, TablePrinter::cell((long long)M),
                TablePrinter::cell((long long)Driver.stats().ForwardRuns),
                TablePrinter::cell((long long)Driver.stats().BackwardRuns),
                TablePrinter::cell(ProvenIters.avg(), 1),
                TablePrinter::cell((long long)Unresolved),
                TablePrinter::cell(Driver.totalSeconds(), 2) + "s"});
    }
    T.addRule();
  }
  T.print(std::cout, "Ablation C: counterexample traces analyzed per "
                     "iteration (thread-escape)");
  return 0;
}
